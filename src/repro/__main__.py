"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``list-systems``
    Print every registered embedding system with its description.
``run``
    Build a system by registry name, run a synthetic workload on it and
    print the canonical result.
``serve``
    Drive a sharded serving cluster and print the latency/QPS report.
    ``--arrival`` picks the traffic model (``poisson``, bursty two-state
    ``mmpp``, or ``trace`` -- replay of a recorded bursty gap sequence
    scaled to the offered rate), ``--engine`` the queueing model
    (analytic M/G/c, event-driven FIFO simulation, or ``event-edf`` for
    earliest-deadline-first dispatch), ``--frontends`` the number of
    concurrent dispatch servers, and ``--service-model`` how per-batch
    service times are obtained (exact cycle simulation or grid
    interpolation).  ``--shard-policy`` / ``--replicas`` /
    ``--hot-fraction`` control table placement: load-aware bin-packing
    and hot-table replication fed by the measured per-table loads, with
    the per-request dispatch cost calibrated from the node itself unless
    ``--request-overhead`` overrides it.  ``--slo-us`` assigns every
    query a completion deadline and reports SLO attainment and goodput;
    ``--admission`` places an admission controller in front of the
    batcher (``none`` / ``token-bucket`` / ``queue-depth`` /
    ``deadline``) so overload sheds instead of queueing without bound.
    Exact-mode batch service times persist across runs in a sqlite
    service-time store (default path under the user cache dir, or a
    directory named by ``--service-store-dir``), so repeating a
    ``serve`` warm-starts with zero cycle simulations;
    ``--no-service-store`` keeps everything in memory.  The report ends
    with the service cache/store entries/hits/misses alongside the
    baseline-cache accounting.  Large ``--queries`` runs (hundreds of
    thousands and up) should add ``--stream-chunk N``: queries are then
    generated and simulated in arrival-ordered chunks of ``N`` through
    the array-backed streaming path, keeping memory O(chunk) while the
    report stays byte-identical to the one-shot run (pair it with
    ``--service-model interp``; streaming is incompatible with
    ``--shard-policy load-aware`` / ``--replicas``, whose placement is
    fed by the materialised query list).  Observability:
    ``--trace out.json`` writes a Perfetto-loadable Chrome trace of the
    run (per-query lifecycle spans, batch slices per frontend lane,
    queue-depth and per-node activity counters) and ``--metrics-json
    m.json`` dumps the cluster's metrics-registry snapshot; for serve
    the workload locality flag is spelled ``--workload-trace``
    (``run``/``profile`` keep ``--trace synthetic|production``).

``report``
    Pretty-print a metrics snapshot written by ``serve
    --metrics-json`` as an aligned terminal table (counters, gauges,
    histogram percentiles, collected component stats).

``profile``
    cProfile a system's workload run and print the hottest functions
    (``--top``/``--sort`` control the report) together with the active
    command-issue kernel flavour -- the before/after instrument for
    performance work on the cycle simulator.

``lint``
    Run the repo's invariant linter (:mod:`repro.analysis`) over the
    given files/directories (default: the installed ``repro`` package).
    ``--rule NAME`` (repeatable) restricts to specific rules and
    ``--json`` emits machine-readable findings.  Exit code 0 means the
    tree is clean, 1 means findings were reported, and 2 is a usage
    error (unknown rule, missing path).  Suppress an intentional
    pattern in place with ``# repro-lint: allow-<rule> (reason)``.

``run``, ``serve`` and ``profile`` accept ``--backend
{serial,thread,process,shared-memory}`` and ``--jobs N`` to pick the
execution backend: for ``run``/``profile`` it drives the multi-channel
cycle simulations (``process`` puts N channels on N cores,
``shared-memory`` additionally ships the request arrays zero-copy); for
``serve`` it is the cluster's *node-level* backend (the per-node shard
simulations of each batch fan out, with ``--jobs`` governing the total
worker slots).  ``run`` prints the memoised DDR4 baseline-cache
effectiveness after the workload.
"""

import argparse
import cProfile
import io
import json
import pstats
import sys

import numpy as np

from repro.dlrm.operators import SLSRequest
from repro.perf.baseline_cache import baseline_cache_stats
from repro.perf.service_model import InterpolatingServiceModel
from repro.serving import (
    BatchingFrontend,
    MMPPArrivalProcess,
    PoissonArrivalProcess,
    QueryStream,
    ReplicatedTableSharder,
    ShardedServingCluster,
    TraceReplayArrivalProcess,
    calibrate_request_overhead_from_queries,
    queries_from_traces,
)
from repro.systems import (
    available_systems,
    build_system,
    system_description,
)
from repro.traces import make_production_table_traces, random_trace


def _build_traces(kind, num_tables, num_rows, lookups_per_table, seed):
    if kind == "production":
        return make_production_table_traces(
            num_lookups_per_table=lookups_per_table, num_rows=num_rows,
            num_tables=num_tables, seed=seed)
    return [random_trace(num_rows, lookups_per_table, table_id=t,
                         seed=seed + t, name="random-T%d" % t)
            for t in range(num_tables)]


def _build_requests(traces, batch, pooling):
    requests = []
    for trace in traces:
        per_request = batch * pooling
        indices = trace.indices[:per_request]
        if indices.size < per_request:
            raise SystemExit("trace too short: need %d lookups per table"
                             % per_request)
        requests.append(SLSRequest(table_id=trace.table_id, indices=indices,
                                   lengths=np.full(batch, pooling)))
    return requests


def _backend_overrides(args):
    """``build_system`` overrides for ``--backend``/``--jobs`` (when set)."""
    overrides = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.jobs is not None:
        overrides["max_workers"] = args.jobs
    return overrides


def _build_system_or_exit(name, had_backend_overrides=False, **overrides):
    """Build a registry system; unknown names exit with the candidates.

    A ``TypeError`` is translated into a friendly message only when
    ``--backend``/``--jobs`` overrides were actually passed (the one way
    a user can feed a system a keyword it rejects); otherwise it is a
    real bug and the traceback must surface.
    """
    try:
        return build_system(name, **overrides)
    except KeyError as error:
        raise SystemExit("error: %s" % error.args[0])
    except TypeError as error:
        if had_backend_overrides:
            raise SystemExit("error: system %r rejected an override: %s"
                             % (name, error))
        raise


def cmd_list_systems(args):
    names = available_systems()
    width = max(len(name) for name in names)
    for name in names:
        print("%-*s  %s" % (width, name, system_description(name)))
    return 0


def cmd_run(args):
    traces = _build_traces(args.workload_trace, args.tables, args.num_rows,
                           args.batch * args.pooling, args.seed)
    requests = _build_requests(traces, args.batch, args.pooling)
    # No explicit address map: the adapters build the dense TableLayout
    # from table_rows/vector_size_bytes, matching the generated traces.
    backend_overrides = _backend_overrides(args)
    # Systems are context managers: exit releases pooled backend workers.
    with _build_system_or_exit(
            args.system, had_backend_overrides=bool(backend_overrides),
            table_rows=args.num_rows,
            vector_size_bytes=args.vector_bytes,
            **backend_overrides) as system:
        result = system.run(requests)
    cache_stats = baseline_cache_stats()
    payload = result.as_dict()
    payload["description"] = system.describe()
    payload["baseline_cache"] = cache_stats
    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print(system.describe())
    print("  workload       : %d requests, %d lookups (%s trace)"
          % (result.num_requests, result.num_lookups,
             args.workload_trace))
    print("  latency        : %d cycles (%.2f us)"
          % (result.total_cycles, result.latency_us))
    if result.baseline_cycles:
        print("  host baseline  : %d cycles -> %.2fx speedup"
              % (result.baseline_cycles, result.speedup_vs_baseline))
    if result.cache_hit_rate:
        print("  cache hit rate : %.1f%%" % (100 * result.cache_hit_rate))
    if result.energy_nj:
        print("  memory energy  : %.1f nJ (savings %.1f%%)"
              % (result.energy_nj,
                 100 * result.energy_savings_fraction))
    print("  baseline cache : %d entries, %d hits, %d misses"
          % (cache_stats["entries"], cache_stats["hits"],
             cache_stats["misses"]))
    return 0


def _build_arrivals(args):
    """Arrival process for ``serve`` from ``--arrival`` / ``--qps``."""
    if args.arrival == "poisson":
        return PoissonArrivalProcess(rate_qps=args.qps, seed=args.seed)
    if args.arrival == "mmpp":
        return MMPPArrivalProcess.from_mean(args.qps, seed=args.seed)
    # "trace": replay a recorded bursty gap sequence rate-scaled to the
    # offered load -- the same burst shape at every --qps.
    return TraceReplayArrivalProcess.from_mmpp(args.qps, args.queries,
                                               seed=args.seed)


def _service_store_arg(args):
    """``service_store=`` value for the serve cluster from the CLI flags."""
    if args.no_service_store:
        return None
    if args.service_store_dir is not None:
        from pathlib import Path

        from repro.perf.service_store import STORE_FILENAME

        return Path(args.service_store_dir) / STORE_FILENAME
    return "default"


def _format_tier_stats(stats):
    """``entries, hits, misses (rate)`` line for a cache/store snapshot."""
    lookups = stats["hits"] + stats["misses"]
    rate = 100.0 * stats["hits"] / lookups if lookups else 0.0
    return "%d entries, %d hits, %d misses (%.1f%% hit rate)" % (
        stats["entries"], stats["hits"], stats["misses"], rate)


def cmd_serve(args):
    if args.slo_us is not None and args.slo_us <= 0:
        raise SystemExit("error: --slo-us must be positive")
    if args.admission == "deadline" and args.slo_us is None:
        raise SystemExit("error: --admission deadline sheds by deadline "
                         "slack; pass --slo-us to assign one")
    if args.request_overhead is not None and args.request_overhead < 0:
        raise SystemExit("error: --request-overhead must be non-negative")
    if args.stream_chunk is not None:
        if args.stream_chunk < args.max_batch:
            raise SystemExit("error: --stream-chunk must be >= "
                             "--max-batch (%d)" % args.max_batch)
        if args.shard_policy == "load-aware" or args.replicas > 1:
            raise SystemExit("error: --stream-chunk streams queries in "
                             "chunks, but load-aware placement and "
                             "replication are fed by the materialised "
                             "query list; drop --stream-chunk or use "
                             "--shard-policy hash")
    traces = _build_traces(args.workload_trace, args.tables,
                           args.num_rows,
                           max(args.batch * args.pooling * 4, 2_000),
                           args.seed)
    if args.stream_chunk is not None:
        # Chunked generation: arrivals and query columns materialise
        # O(stream_chunk) at a time inside simulate().
        queries = QueryStream(
            traces, _build_arrivals(args), num_queries=args.queries,
            batch_size=args.batch, pooling_factor=args.pooling)
    else:
        queries = queries_from_traces(
            traces, args.queries, _build_arrivals(args),
            batch_size=args.batch, pooling_factor=args.pooling)
    if args.shard_policy == "load-aware" or args.replicas > 1:
        # Replication and load-aware placement are fed by the measured
        # per-table lookup loads of the offered stream, priced with the
        # node's own per-request dispatch cost (calibrated from its
        # measured service times unless --request-overhead overrides).
        if args.request_overhead is None:
            with _build_system_or_exit(
                    args.system, table_rows=args.num_rows,
                    vector_size_bytes=args.vector_bytes,
                    compare_baseline=False) as probe:
                overhead = calibrate_request_overhead_from_queries(
                    probe, queries)
        else:
            overhead = args.request_overhead
        sharding = {"sharder": ReplicatedTableSharder.from_queries(
            args.nodes, queries, request_overhead_lookups=overhead,
            policy=args.shard_policy,
            max_replicas=args.replicas, hot_fraction=args.hot_fraction,
            seed=args.seed)}
    else:
        sharding = {"shard_policy": args.shard_policy}
    try:
        cluster = ShardedServingCluster(
            num_nodes=args.nodes, node_system=args.system,
            num_frontends=args.frontends,
            table_rows=args.num_rows,
            backend=args.backend, jobs=args.jobs,
            service_store=_service_store_arg(args),
            vector_size_bytes=args.vector_bytes, **sharding)
    except KeyError as error:     # unknown registry name from build_system
        raise SystemExit("error: %s" % error.args[0])
    except TypeError as error:    # node system rejected backend override
        if args.backend is not None or args.jobs is not None:
            raise SystemExit("error: system %r rejected an override: %s"
                             % (args.system, error))
        raise
    if args.service_model == "interp":
        service_model = InterpolatingServiceModel(traces)
    else:
        service_model = None
    tracer = None
    if args.trace is not None:
        from repro.obs import Tracer

        tracer = Tracer(label="serve")
    # Clusters are context managers: exit releases the node-level
    # backend and every node's own pooled workers.
    with cluster:
        report = cluster.simulate(
            queries,
            frontend=BatchingFrontend(max_queries=args.max_batch,
                                      max_delay_us=args.max_delay_us),
            engine=args.engine, service_model=service_model,
            slo_policy=args.slo_us, admission=args.admission,
            stream_chunk=args.stream_chunk,
            trace=tracer, metrics=args.metrics_json is not None)
        # Collected inside the context: the store's entry count needs
        # its connection, which close() releases (the metrics snapshot
        # polls the same store collector).
        service_stats = cluster.service_stats()
        metrics_snapshot = (cluster.metrics.snapshot()
                            if args.metrics_json is not None else None)
    if tracer is not None:
        tracer.write_chrome_trace(args.trace)
    if metrics_snapshot is not None:
        from repro.obs import write_metrics_json

        write_metrics_json(metrics_snapshot, args.metrics_json)
    if args.json:
        payload = report.as_dict()
        payload["service_stats"] = service_stats
        if args.trace is not None:
            payload["trace_path"] = args.trace
        if args.metrics_json is not None:
            payload["metrics_path"] = args.metrics_json
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print("%s serving %d queries at %.0f QPS offered (%s arrivals)" %
          (cluster.describe(), report.num_queries, report.offered_qps,
           args.arrival))
    print("  engine         : %s (%d frontend%s, %s service times)"
          % (args.engine, report.num_servers,
             "s" if report.num_servers != 1 else "",
             args.service_model))
    print("  sharding       : %s" % cluster.sharder.describe())
    print("  batches        : %d (%s)"
          % (report.num_batches,
             ", ".join("%s=%d" % kv
                       for kv in sorted(report.trigger_counts.items()))))
    print("  utilization    : %.1f%%" % (100 * report.utilization))
    print("  latency p50    : %.1f us" % report.p50_us)
    print("  latency p95    : %.1f us" % report.p95_us)
    print("  latency p99    : %.1f us" % report.p99_us)
    print("  sustainable    : %.0f QPS" % report.sustainable_qps)
    slo = report.extras.get("slo")
    if slo is not None:
        print("  slo            : %s" % (slo["slo_policy"] or "none"))
        if slo["attainment"] is not None:
            print("  attainment     : %.1f%% (%d/%d deadlines met)"
                  % (100 * slo["attainment"], slo["deadlines_met"],
                     slo["num_with_deadline"]))
        print("  admission      : %s, shed %d/%d (%.1f%%)"
              % (slo["admission"], slo["num_shed"], slo["num_offered"],
                 100 * slo["shed_rate"]))
        print("  goodput        : %.0f QPS" % slo["goodput_qps"])
    print("  service cache  : %s" % _format_tier_stats(
        service_stats["cache"]))
    if "store" in service_stats:
        print("  service store  : %s" % _format_tier_stats(
            service_stats["store"]))
    print("  exact sims     : %d batch simulations (%d duplicates "
          "collapsed)" % (service_stats["exact_simulations"],
                          service_stats["dedup_hits"]))
    if tracer is not None:
        print("  trace          : %s (load in ui.perfetto.dev)"
              % args.trace)
    if metrics_snapshot is not None:
        print("  metrics json   : %s (pretty-print with "
              "'python -m repro report %s')"
              % (args.metrics_json, args.metrics_json))
    return 0


def cmd_report(args):
    """Pretty-print a ``serve --metrics-json`` snapshot as a table."""
    from repro.obs import format_metrics_table

    try:
        with open(args.metrics_json) as handle:
            snapshot = json.load(handle)
    except OSError as error:
        raise SystemExit("error: cannot read %s: %s"
                         % (args.metrics_json, error))
    except json.JSONDecodeError as error:
        raise SystemExit("error: %s is not valid JSON: %s"
                         % (args.metrics_json, error))
    if not isinstance(snapshot, dict):
        raise SystemExit("error: %s is not a metrics snapshot (expected "
                         "a JSON object)" % args.metrics_json)
    print(format_metrics_table(snapshot))
    return 0


def cmd_profile(args):
    """cProfile one system's workload run and print the hottest functions.

    The same workload knobs as ``run`` apply, so a profile is always of
    a reproducible composition; the report header carries the active
    command-issue kernel flavour, which is the first thing to check when
    comparing before/after numbers across hosts.
    """
    from repro.core import kernels

    if args.system_name is not None:
        args.system = args.system_name
    traces = _build_traces(args.workload_trace, args.tables,
                           args.num_rows,
                           args.batch * args.pooling, args.seed)
    requests = _build_requests(traces, args.batch, args.pooling)
    backend_overrides = _backend_overrides(args)
    with _build_system_or_exit(
            args.system, had_backend_overrides=bool(backend_overrides),
            table_rows=args.num_rows,
            vector_size_bytes=args.vector_bytes,
            **backend_overrides) as system:
        if args.warmup:
            system.run(requests)   # exclude one-time setup (JIT, pools)
        profiler = cProfile.Profile()
        profiler.enable()
        result = system.run(requests)
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    header = {
        "system": system.describe(),
        "kernels": kernels.describe(),
        "total_cycles": result.total_cycles,
        "num_lookups": result.num_lookups,
        "sort": args.sort,
    }
    if args.json:
        rows = []
        for func, (primitive, calls, tottime, cumtime, _) in \
                sorted(stats.stats.items(), key=lambda kv: -kv[1][3])[
                    :args.top]:
            filename, line, name = func
            rows.append({"function": "%s:%d:%s" % (filename, line, name),
                         "calls": calls, "primitive_calls": primitive,
                         "tottime": tottime, "cumtime": cumtime})
        json.dump({"profile": header, "top": rows}, sys.stdout, indent=2)
        print()
        return 0
    print("profiled %s" % header["system"])
    print("  kernels        : %s" % header["kernels"])
    print("  workload       : %d lookups -> %d cycles (%s trace)"
          % (result.num_lookups, result.total_cycles,
             args.workload_trace))
    print(stream.getvalue())
    return 0


def cmd_lint(args):
    """Run the invariant linter; exit 0 clean / 1 findings / 2 usage."""
    from repro.analysis import LintUsageError, available_rules, lint_paths

    if args.rule:
        unknown = [name for name in args.rule
                   if name not in available_rules()]
        if unknown:
            print("error: unknown rule%s %s; available: %s"
                  % ("s" if len(unknown) > 1 else "",
                     ", ".join(repr(name) for name in unknown),
                     ", ".join(available_rules())), file=sys.stderr)
            return 2
    paths = args.paths
    if not paths:
        from pathlib import Path

        import repro

        paths = [str(Path(repro.__file__).parent)]
    try:
        findings = lint_paths(paths, rules=args.rule or None)
    except LintUsageError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    rules_run = sorted(args.rule) if args.rule else available_rules()
    if args.json:
        json.dump({"paths": [str(p) for p in paths],
                   "rules": rules_run,
                   "num_findings": len(findings),
                   "findings": [f.as_dict() for f in findings]},
                  sys.stdout, indent=2)
        print()
        return 1 if findings else 0
    for finding in findings:
        print(finding.format())
    print("%d finding%s (%d rule%s over %s)"
          % (len(findings), "s" if len(findings) != 1 else "",
             len(rules_run), "s" if len(rules_run) != 1 else "",
             ", ".join(str(p) for p in paths)))
    return 1 if findings else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="RecNMP reproduction: unified system runner")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-systems",
                   help="list registered embedding systems")

    def add_workload_args(p, trace_flag="--trace"):
        p.add_argument("--system", default="recnmp-opt",
                       help="registry name (see list-systems)")
        p.add_argument(trace_flag, dest="workload_trace",
                       choices=("synthetic", "production"),
                       default="synthetic",
                       help="'synthetic' (random) or 'production' locality")
        p.add_argument("--tables", type=int, default=4)
        p.add_argument("--batch", type=int, default=8)
        p.add_argument("--pooling", type=int, default=40)
        p.add_argument("--num-rows", type=int, default=20_000)
        p.add_argument("--vector-bytes", type=int, default=128)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--backend",
                       choices=("serial", "thread", "process",
                                "shared-memory"),
                       default=None,
                       help="execution backend (run/profile: one core per "
                            "channel; serve: one core per node shard; "
                            "shared-memory ships request arrays zero-copy)")
        p.add_argument("--jobs", type=int, default=None,
                       help="max concurrent backend workers (default: one "
                            "per busy channel / node)")
        p.add_argument("--json", action="store_true",
                       help="emit the result as JSON")

    run = sub.add_parser("run", help="run one system on a workload")
    add_workload_args(run)

    profile = sub.add_parser(
        "profile", help="cProfile a system's workload run")
    add_workload_args(profile)
    profile.add_argument("system_name", nargs="?", default=None,
                         metavar="system",
                         help="registry name (positional alternative to "
                              "--system)")
    profile.add_argument("--top", type=int, default=25,
                         help="number of functions in the report")
    profile.add_argument("--sort", choices=("cumulative", "tottime"),
                         default="cumulative",
                         help="profile sort order")
    profile.add_argument("--warmup", action="store_true",
                         help="run the workload once unprofiled first to "
                              "exclude one-time setup (JIT compilation, "
                              "worker pools)")

    lint = sub.add_parser(
        "lint", help="run the repo invariant linter (repro.analysis)")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--rule", action="append", default=None,
                      metavar="NAME",
                      help="run only this rule (repeatable; default: "
                           "all registered rules)")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as JSON")

    serve = sub.add_parser("serve",
                           help="drive a sharded serving cluster")
    # serve spells the workload locality flag --workload-trace so that
    # --trace can name the Perfetto trace output file.
    add_workload_args(serve, trace_flag="--workload-trace")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Perfetto-loadable Chrome trace of "
                            "the run (query lifecycle spans, batch "
                            "slices, queue-depth counters) to PATH")
    serve.add_argument("--metrics-json", default=None, metavar="PATH",
                       help="dump the cluster metrics-registry snapshot "
                            "as JSON to PATH (render with 'python -m "
                            "repro report PATH')")
    serve.add_argument("--nodes", type=int, default=2)
    serve.add_argument("--qps", type=float, default=50_000.0)
    serve.add_argument("--queries", type=int, default=64)
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--max-delay-us", type=float, default=200.0)
    serve.add_argument("--arrival", choices=("poisson", "mmpp", "trace"),
                       default="poisson",
                       help="traffic model: memoryless Poisson, bursty "
                            "two-state MMPP, or replay of a recorded "
                            "bursty gap trace scaled to --qps")
    serve.add_argument("--engine",
                       choices=("analytic", "event", "event-edf"),
                       default="analytic",
                       help="queueing model: closed-form M/G/c, "
                            "event-driven FIFO dispatch simulation, or "
                            "event-driven earliest-deadline-first")
    serve.add_argument("--slo-us", type=float, default=None,
                       help="per-query completion deadline in "
                            "microseconds; reports SLO attainment and "
                            "goodput alongside the percentiles")
    serve.add_argument("--admission",
                       choices=("none", "token-bucket", "queue-depth",
                                "deadline"),
                       default=None,
                       help="admission controller in front of the "
                            "batcher (deadline-aware shedding needs "
                            "--slo-us)")
    serve.add_argument("--request-overhead", type=float, default=None,
                       help="per-request dispatch cost in "
                            "lookup-equivalents for load-aware "
                            "placement/routing (default: calibrated "
                            "from the node's measured service times)")
    serve.add_argument("--frontends", type=int, default=1,
                       help="concurrent dispatch servers on the batch queue")
    serve.add_argument("--stream-chunk", type=int, default=None,
                       help="generate and simulate queries in arrival-"
                            "ordered chunks of this many (memory stays "
                            "O(chunk); report identical to one-shot) -- "
                            "for large --queries runs")
    serve.add_argument("--shard-policy",
                       choices=("round-robin", "hash", "load-aware"),
                       default="round-robin",
                       help="table placement: round-robin/hash over table "
                            "ids, or load-aware bin-packing by measured "
                            "per-table lookup load")
    serve.add_argument("--replicas", type=int, default=1,
                       help="max replicas per hot table (>1 replicates "
                            "hot tables across nodes and routes to the "
                            "least-loaded replica)")
    serve.add_argument("--hot-fraction", type=float, default=0.1,
                       help="load share above which a table counts as hot "
                            "and is replicated")
    serve.add_argument("--service-model", choices=("exact", "interp"),
                       default="exact",
                       help="per-batch service times: exact cycle "
                            "simulation or calibrated-grid interpolation")
    serve.add_argument("--service-store-dir", default=None,
                       help="directory of the persistent service-time "
                            "store (default: the user cache dir, or "
                            "$REPRO_SERVICE_STORE_DIR)")
    serve.add_argument("--no-service-store", action="store_true",
                       help="keep batch service times in memory only; "
                            "repeated runs re-simulate instead of "
                            "warm-starting from the store")

    report = sub.add_parser(
        "report", help="pretty-print a serve --metrics-json snapshot")
    report.add_argument("metrics_json", metavar="metrics.json",
                        help="metrics snapshot written by "
                             "'serve --metrics-json'")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.command == "list-systems":
        return cmd_list_systems(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "report":
        return cmd_report(args)
    return cmd_serve(args)


if __name__ == "__main__":
    sys.exit(main())
