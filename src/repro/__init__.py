"""repro: a reproduction of RecNMP (ISCA 2020).

RecNMP is a lightweight, DDR4-compatible near-memory processing architecture
that accelerates the sparse embedding (SLS) operators dominating deep-learning
personalized recommendation inference.  This package reimplements the full
system described in the paper:

* :mod:`repro.dram` -- a cycle-level DDR4 memory-system simulator,
* :mod:`repro.cache` -- CPU-side and memory-side (RankCache) cache simulators,
* :mod:`repro.dlrm` -- the DLRM workload substrate (embedding tables, SLS
  operators, MLPs, the RM1/RM2 model configurations),
* :mod:`repro.traces` -- random and production-like embedding lookup traces,
* :mod:`repro.core` -- the RecNMP architecture itself (NMP instructions,
  packet generation/scheduling, hot-entry profiling, rank-/DIMM-NMP modules,
  the cycle simulator, and the energy/area models),
* :mod:`repro.perf` -- the analytical CPU/system performance models used for
  the characterization and the end-to-end evaluation,
* :mod:`repro.baselines` -- the host CPU, TensorDIMM and Chameleon baselines,
* :mod:`repro.systems` -- the unified ``EmbeddingSystem`` interface and the
  string-keyed registry every compared system plugs into,
* :mod:`repro.serving` -- request-level traffic serving (arrivals, batching,
  table sharding, queueing) on top of the system interface.
"""

from repro import (
    baselines,
    cache,
    core,
    dlrm,
    dram,
    perf,
    serving,
    systems,
    traces,
    utils,
)

__version__ = "1.1.0"

__all__ = [
    "baselines",
    "cache",
    "core",
    "dlrm",
    "dram",
    "perf",
    "serving",
    "systems",
    "traces",
    "utils",
    "__version__",
]
