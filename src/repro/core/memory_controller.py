"""Host-side memory controller with the NMP extension (Fig. 10(d)).

The NMP extension adds, next to the regular FR-FCFS read/write queues, an
NMP packet queue with its own scheduling and arbitration: packets from
parallel cores are queued, scheduled (optionally table-aware), decoded into
NMP-Insts, translated from physical to DRAM addresses, and streamed to the
RecNMP processing units over the channel.  The FR-FCFS reordering applies
*within* a packet only, never across packets, so partial-sum accumulation
counters stay consistent.
"""

from dataclasses import dataclass, field

from repro.core.instruction import NMPInstruction
from repro.core.scheduler import PacketScheduler


@dataclass
class NMPControllerStats:
    """Counters of the NMP-extended memory controller."""

    packets_received: int = 0
    packets_issued: int = 0
    instructions_issued: int = 0
    counter_configurations: int = 0
    per_rank_instructions: dict = field(default_factory=dict)


class NMPMemoryController:
    """Queue, schedule and dispatch NMP packets to a RecNMP channel.

    Parameters
    ----------
    num_ranks:
        Channel-wide rank count of the attached RecNMP channel.
    scheduling_policy:
        ``"fcfs"`` or ``"table-aware"`` (Section III-D).
    rank_of_address:
        Callable mapping a physical byte address to a channel-wide rank
        index; defaults to 64 B-block interleaving across ranks.
    reorder_window:
        FR-FCFS reordering window *within* a packet: instructions to the
        same DRAM row within the window are grouped to increase row-buffer
        hits (the host-side controller does the heavy lifting of request
        reordering per the paper).
    """

    def __init__(self, num_ranks=8, scheduling_policy="table-aware",
                 rank_of_address=None, reorder_window=16):
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if reorder_window < 1:
            raise ValueError("reorder_window must be >= 1")
        self.num_ranks = int(num_ranks)
        self.scheduler = PacketScheduler(policy=scheduling_policy)
        if rank_of_address is None:
            rank_of_address = lambda address: \
                (address // 64) % self.num_ranks  # noqa: E731
        self.rank_of_address = rank_of_address
        self.reorder_window = int(reorder_window)
        self.stats = NMPControllerStats()

    # ------------------------------------------------------------------ #
    def submit(self, packets):
        """Submit the packet stream of one core / SLS thread."""
        packets = list(packets)
        self.scheduler.add_source(packets)
        self.stats.packets_received += len(packets)

    def rank_of_instruction(self, instruction):
        """Channel-wide rank index an NMP-Inst is routed to."""
        return self.rank_of_address(instruction.daddr * 64)

    def _reorder_within_packet(self, packet):
        """FR-FCFS-style reordering of instructions inside one packet.

        Within a sliding window, instructions that target an already-open
        row (same row as the previous instruction to that rank) are hoisted
        to issue consecutively.  Ordering across PsumTags is irrelevant for
        correctness because each accumulates into its own register.
        """
        instructions = list(packet.instructions)
        if len(instructions) <= 2:
            return instructions
        reordered = []
        window = instructions[:]
        last_row_per_rank = {}
        while window:
            horizon = window[:self.reorder_window]
            chosen_index = 0
            for index, inst in enumerate(horizon):
                rank = self.rank_of_instruction(inst)
                row = inst.daddr // 128      # 128 x 64 B columns per row
                if last_row_per_rank.get(rank) == row:
                    chosen_index = index
                    break
            chosen = window.pop(chosen_index)
            rank = self.rank_of_instruction(chosen)
            last_row_per_rank[rank] = chosen.daddr // 128
            reordered.append(chosen)
        return reordered

    # ------------------------------------------------------------------ #
    def dispatch(self, channel, reorder=True):
        """Schedule all submitted packets and execute them on ``channel``.

        Returns ``(total_cycles, per_packet_completions)`` where completions
        are measured relative to each packet's own start (latency), and the
        packets are issued back to back (the channel pipeline overlaps the
        rank work of consecutive packets through the rank-NMP state).
        """
        order = self.scheduler.schedule()
        per_packet = []
        current_cycle = 0
        for packet in order:
            instructions = (self._reorder_within_packet(packet) if reorder
                            else list(packet.instructions))
            issue_packet = _ReorderedPacketView(packet, instructions)
            self.stats.counter_configurations += 1
            completion = channel.execute_packet(
                issue_packet, start_cycle=current_cycle,
                rank_of_instruction=self.rank_of_instruction)
            per_packet.append(completion - current_cycle)
            for instruction in instructions:
                rank = self.rank_of_instruction(instruction)
                self.stats.per_rank_instructions[rank] = \
                    self.stats.per_rank_instructions.get(rank, 0) + 1
            self.stats.instructions_issued += len(instructions)
            self.stats.packets_issued += 1
            current_cycle = completion
        return current_cycle, per_packet

    def reset(self):
        """Clear queued packets and statistics."""
        self.scheduler.clear()
        self.stats = NMPControllerStats()


class _ReorderedPacketView:
    """A lightweight packet proxy exposing reordered instructions."""

    def __init__(self, packet, instructions):
        self._packet = packet
        self.instructions = instructions

    def __len__(self):
        return len(self.instructions)

    def __getattr__(self, name):
        return getattr(self._packet, name)

    @property
    def num_poolings(self):
        return len({inst.psum_tag for inst in self.instructions})
