"""Host-side memory controller with the NMP extension (Fig. 10(d)).

The NMP extension adds, next to the regular FR-FCFS read/write queues, an
NMP packet queue with its own scheduling and arbitration: packets from
parallel cores are queued, scheduled (optionally table-aware), decoded into
NMP-Insts, translated from physical to DRAM addresses, and streamed to the
RecNMP processing units over the channel.  The FR-FCFS reordering applies
*within* a packet only, never across packets, so partial-sum accumulation
counters stay consistent.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core import kernels as _kernels
from repro.core.instruction import NMPInstruction
from repro.core.scheduler import PacketScheduler


@dataclass
class NMPControllerStats:
    """Counters of the NMP-extended memory controller."""

    packets_received: int = 0
    packets_issued: int = 0
    instructions_issued: int = 0
    counter_configurations: int = 0
    per_rank_instructions: dict = field(default_factory=dict)


class NMPMemoryController:
    """Queue, schedule and dispatch NMP packets to a RecNMP channel.

    Parameters
    ----------
    num_ranks:
        Channel-wide rank count of the attached RecNMP channel.
    scheduling_policy:
        ``"fcfs"`` or ``"table-aware"`` (Section III-D).
    rank_of_address:
        Callable mapping a physical byte address to a channel-wide rank
        index; defaults to 64 B-block interleaving across ranks.
    reorder_window:
        FR-FCFS reordering window *within* a packet: instructions to the
        same DRAM row within the window are grouped to increase row-buffer
        hits (the host-side controller does the heavy lifting of request
        reordering per the paper).
    ranks_of_addresses:
        Optional vectorised counterpart of ``rank_of_address``: a callable
        mapping a numpy array of physical byte addresses to a numpy array
        of rank indices.  When given, the per-packet rank computation runs
        as one array operation instead of one Python call per instruction.
        Only valid for *stateless* mappings (a stateful mapping such as
        first-touch page colouring depends on call order and must come in
        as the scalar ``rank_of_address``).
    """

    def __init__(self, num_ranks=8, scheduling_policy="table-aware",
                 rank_of_address=None, reorder_window=16,
                 ranks_of_addresses=None):
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if reorder_window < 1:
            raise ValueError("reorder_window must be >= 1")
        self.num_ranks = int(num_ranks)
        self.scheduler = PacketScheduler(policy=scheduling_policy)
        if rank_of_address is None:
            rank_of_address = lambda address: \
                (address // 64) % self.num_ranks  # noqa: E731
        self.rank_of_address = rank_of_address
        self.ranks_of_addresses = ranks_of_addresses
        self.reorder_window = int(reorder_window)
        self.stats = NMPControllerStats()

    # ------------------------------------------------------------------ #
    def submit(self, packets):
        """Submit the packet stream of one core / SLS thread."""
        packets = list(packets)
        self.scheduler.add_source(packets)
        self.stats.packets_received += len(packets)

    def rank_of_instruction(self, instruction):
        """Channel-wide rank index an NMP-Inst is routed to."""
        return self.rank_of_address(instruction.daddr * 64)

    def _packet_ranks(self, instructions):
        """Per-instruction rank indices, computed once per packet.

        Uses the vectorised ``ranks_of_addresses`` hook when available;
        otherwise falls back to one scalar ``rank_of_address`` call per
        instruction *in packet order* -- which is exactly the first-touch
        order a stateful mapping (page colouring) observed when the rank
        used to be recomputed inside every reorder scan, so assignments
        are unchanged.
        """
        if self.ranks_of_addresses is not None:
            daddrs = np.fromiter((inst.daddr for inst in instructions),
                                 dtype=np.int64, count=len(instructions))
            return self.ranks_of_addresses(daddrs * 64).tolist()
        rank_of_address = self.rank_of_address
        return [rank_of_address(inst.daddr * 64) for inst in instructions]

    def _reorder_indices(self, rows, ranks):
        """FR-FCFS reorder as an index permutation (see dispatch).

        Within a sliding window, instructions that target an already-open
        row (same row as the previous instruction to that rank) are hoisted
        to issue consecutively.  Ordering across PsumTags is irrelevant for
        correctness because each accumulates into its own register.
        ``rows`` carries the per-instruction DRAM row (``daddr // 128``,
        128 columns per row), precomputed by the caller so the packed
        dispatch path can derive it as one array op.
        """
        count = len(rows)
        if count <= 2:
            return list(range(count))
        window = list(range(min(self.reorder_window, count)))
        next_index = len(window)
        last_row_per_rank = {}
        order = []
        while window:
            chosen_pos = 0
            for pos, index in enumerate(window):
                if last_row_per_rank.get(ranks[index]) == rows[index]:
                    chosen_pos = pos
                    break
            index = window.pop(chosen_pos)
            if next_index < count:
                window.append(next_index)
                next_index += 1
            last_row_per_rank[ranks[index]] = rows[index]
            order.append(index)
        return order

    def _reorder_within_packet(self, packet):
        """FR-FCFS-style reordering of instructions inside one packet."""
        instructions = list(packet.instructions)
        if len(instructions) <= 2:
            return instructions
        ranks = self._packet_ranks(instructions)
        rows = [inst.daddr // 128 for inst in instructions]
        return [instructions[i]
                for i in self._reorder_indices(rows, ranks)]

    # ------------------------------------------------------------------ #
    def dispatch(self, channel, reorder=True):
        """Schedule all submitted packets and execute them on ``channel``.

        Returns ``(total_cycles, per_packet_completions)`` where completions
        are measured relative to each packet's own start (latency), and the
        packets are issued back to back (the channel pipeline overlaps the
        rank work of consecutive packets through the rank-NMP state).

        Per packet, the instruction->rank mapping is computed exactly once
        and threaded through the reorder pass, the per-rank statistics and
        ``channel.execute_packet`` (instead of re-deriving it per window
        scan and then again for the stats).
        """
        order = self.scheduler.schedule()
        per_packet = []
        current_cycle = 0
        per_rank_counts = self.stats.per_rank_instructions
        use_packed = getattr(channel, "supports_packed", False)
        # Tiny packets stay on the object path: the numpy packing and
        # kernel-call fixed costs only pay for themselves past a
        # flavour-dependent packet size (both paths are bit-identical,
        # so mixing them within one dispatch is safe).
        packed_min = _kernels.packed_dispatch_min_instructions() \
            if use_packed else 0
        for packet in order:
            if use_packed and len(packet.instructions) >= packed_min:
                current_cycle, latency = self._dispatch_packed(
                    channel, packet, current_cycle, reorder,
                    per_rank_counts)
                per_packet.append(latency)
                continue
            instructions = list(packet.instructions)
            ranks = self._packet_ranks(instructions)
            if reorder and len(instructions) > 2:
                rows = [inst.daddr // 128 for inst in instructions]
                permutation = self._reorder_indices(rows, ranks)
                instructions = [instructions[i] for i in permutation]
                ranks = [ranks[i] for i in permutation]
            issue_packet = _ReorderedPacketView(packet, instructions)
            self.stats.counter_configurations += 1
            completion = channel.execute_packet(
                issue_packet, start_cycle=current_cycle,
                rank_of_instruction=self.rank_of_instruction,
                ranks=ranks)
            per_packet.append(completion - current_cycle)
            for rank in ranks:
                per_rank_counts[rank] = per_rank_counts.get(rank, 0) + 1
            self.stats.instructions_issued += len(instructions)
            self.stats.packets_issued += 1
            current_cycle = completion
        return current_cycle, per_packet

    def _dispatch_packed(self, channel, packet, current_cycle, reorder,
                         per_rank_counts):
        """Array-native dispatch of one packet (no instruction objects).

        Bit-identical to the object path: same rank mapping (scalar calls
        stay in packet order for stateful mappings), same FR-FCFS
        permutation, same back-to-back packet timing.  Returns
        ``(completion, latency)``.
        """
        packed = packet.packed_arrays()
        daddrs = packed.daddrs
        count = len(daddrs)
        if self.ranks_of_addresses is not None:
            ranks = np.asarray(self.ranks_of_addresses(daddrs * 64),
                               dtype=np.int64)
        else:
            rank_of_address = self.rank_of_address
            ranks = np.fromiter(
                (rank_of_address(daddr * 64)
                 for daddr in daddrs.tolist()),
                np.int64, count)
        if count and (int(ranks.min()) < 0
                      or int(ranks.max()) >= self.num_ranks):
            bad = ranks[(ranks < 0) | (ranks >= self.num_ranks)][0]
            raise ValueError("invalid rank %d for instruction" % int(bad))
        if reorder and count > 2:
            permutation = _kernels.reorder_indices(
                daddrs // 128, ranks, self.reorder_window, self.num_ranks)
            packed = packed.take(permutation)
            ranks = ranks[permutation]
        self.stats.counter_configurations += 1
        completion = channel.execute_packed(
            packed, start_cycle=current_cycle, ranks=ranks)
        if count:
            counts = np.bincount(ranks)
            for rank, rank_count in enumerate(counts.tolist()):
                if rank_count:
                    per_rank_counts[rank] = \
                        per_rank_counts.get(rank, 0) + rank_count
        self.stats.instructions_issued += count
        self.stats.packets_issued += 1
        return completion, completion - current_cycle

    def reset(self):
        """Clear queued packets and statistics."""
        self.scheduler.clear()
        self.stats = NMPControllerStats()


class _ReorderedPacketView:
    """A lightweight packet proxy exposing reordered instructions.

    ``__slots__`` keeps the proxy explicit: its own state is exactly
    ``(_packet, instructions, num_poolings)``, a mistyped assignment
    raises instead of silently creating an attribute that the
    ``__getattr__`` delegation would then mask, and ``num_poolings`` is
    computed once at construction instead of rebuilding a set of PsumTags
    on every access (the channel reads it per packet completion).
    """

    __slots__ = ("_packet", "instructions", "num_poolings")

    def __init__(self, packet, instructions):
        self._packet = packet
        self.instructions = instructions
        self.num_poolings = len({inst.psum_tag for inst in instructions})

    def __len__(self):
        return len(self.instructions)

    def __getattr__(self, name):
        return getattr(self._packet, name)
