"""Rank-NMP module (Fig. 8(c)).

Each rank of a RecNMP-equipped DIMM has its own rank-NMP module performing
three functions:

1. translate NMP-Insts into low-level DDR command sequences for the DRAM
   devices of that rank (the local command decoder),
2. manage the memory-side RankCache (with LocalityBit bypass),
3. execute the SLS-family datapath: multiply the fetched vector by the
   weight (and dequantisation scalar/bias when needed) and accumulate it
   into the partial-sum register selected by the PsumTag.

The module is modelled at cycle granularity: every instruction is charged
either the RankCache access latency (on a hit) or the DRAM access latency
derived from the rank's DDR4 timing state (on a miss / bypass).  The
arithmetic pipeline (FP32 multipliers and adders, Table I) is overlapped
with memory reads, so it only contributes when it is the bottleneck.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.cache.rank_cache import RankCache
from repro.core import kernels as _kernels
from repro.dram.commands import CommandType
from repro.dram.rank import Rank
from repro.dram.timing import DDR4_2400


@dataclass
class RankNMPConfig:
    """Configuration of one rank-NMP module.

    Latencies follow Table I: RankCache access 1 cycle, FP32 adder 3 cycles,
    FP32 multiplier 4 cycles (all in DRAM cycles at the DIMM buffer clock).
    """

    timing: object = field(default_factory=lambda: DDR4_2400)
    use_cache: bool = True
    cache_capacity_bytes: int = 128 * 1024
    vector_size_bytes: int = 64
    cache_latency_cycles: int = 1
    adder_latency_cycles: int = 3
    multiplier_latency_cycles: int = 4
    num_bank_groups: int = 4
    banks_per_group: int = 4
    columns_per_row: int = 128

    def __post_init__(self):
        if self.cache_capacity_bytes <= 0:
            raise ValueError("cache_capacity_bytes must be positive")
        if self.vector_size_bytes <= 0 or self.vector_size_bytes % 64:
            raise ValueError("vector_size_bytes must be a positive multiple "
                             "of 64")


@dataclass
class RankNMPStats:
    """Counters of one rank-NMP module."""

    instructions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bypasses: int = 0
    dram_reads: int = 0
    activations: int = 0
    busy_cycles: int = 0
    bytes_from_dram: int = 0
    bytes_from_cache: int = 0

    @property
    def cache_hit_rate(self):
        total = self.cache_hits + self.cache_misses + self.cache_bypasses
        if not total:
            return 0.0
        return self.cache_hits / total

    def as_dict(self):
        return {
            "instructions": self.instructions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_bypasses": self.cache_bypasses,
            "dram_reads": self.dram_reads,
            "activations": self.activations,
            "busy_cycles": self.busy_cycles,
            "bytes_from_dram": self.bytes_from_dram,
            "bytes_from_cache": self.bytes_from_cache,
            "cache_hit_rate": self.cache_hit_rate,
        }


class RankNMP:
    """Cycle-approximate model of one rank-NMP module."""

    def __init__(self, config=None, rank_index=0):
        self.config = config or RankNMPConfig()
        self.rank_index = rank_index
        self.dram_rank = Rank(self.config.timing,
                              num_bank_groups=self.config.num_bank_groups,
                              banks_per_group=self.config.banks_per_group,
                              rank_index=rank_index)
        self.cache = RankCache(
            capacity_bytes=self.config.cache_capacity_bytes,
            vector_size_bytes=self.config.vector_size_bytes,
            access_latency_cycles=self.config.cache_latency_cycles,
        ) if self.config.use_cache else None
        self.stats = RankNMPStats()
        # Partial-sum register file: PsumTag -> accumulated vector count.
        self._psum_counts = {}
        self.current_cycle = 0
        # Compiled (or pure-python) command-issue kernel; None when
        # REPRO_DISABLE_KERNELS is set, in which case the object-based
        # methods below run as-is (they remain the readable spec the
        # kernel is tested against).  Streams shorter than the cutover
        # take the legacy path even with a kernel bound: the kernel's
        # packing and sync costs only amortise on long streams (the
        # cutover is 0 -- kernel always -- inside force_flavor).
        self._kernel = _kernels.make_rank_kernel(self)
        self._kernel_min_instructions = \
            _kernels.packed_dispatch_min_instructions()

    # ------------------------------------------------------------------ #
    # Address decoding                                                   #
    # ------------------------------------------------------------------ #
    def decode_bank_row(self, daddr):
        """Decode (bank_group, bank, row, column) from a 64 B block Daddr.

        The low bits address the column within a row, the next bits pick the
        bank group and bank, and the remaining bits are the row -- consistent
        with the channel-level mapping used by the packet generator.
        """
        config = self.config
        block = int(daddr)
        column = block % config.columns_per_row
        block //= config.columns_per_row
        bank_group = block % config.num_bank_groups
        block //= config.num_bank_groups
        bank = block % config.banks_per_group
        block //= config.banks_per_group
        row = block
        return bank_group, bank, row, column

    def decode_bank_rows(self, daddrs):
        """Vectorised :meth:`decode_bank_row` over many Daddrs.

        Returns ``(bank_groups, banks, rows)`` as plain Python lists (the
        column is not needed by the timing model).  Used to decode a whole
        packet once instead of re-decoding per instruction per scheduler
        scan.
        """
        config = self.config
        blocks = np.asarray(daddrs, dtype=np.int64) // config.columns_per_row
        bank_groups = blocks % config.num_bank_groups
        blocks = blocks // config.num_bank_groups
        banks = blocks % config.banks_per_group
        rows = blocks // config.banks_per_group
        return bank_groups.tolist(), banks.tolist(), rows.tolist()

    # ------------------------------------------------------------------ #
    # Execution                                                          #
    # ------------------------------------------------------------------ #
    def _dram_read(self, instruction, earliest_cycle, decoded=None):
        """Issue the DDR commands of one instruction.

        Returns ``(data_done, next_slot)`` where ``data_done`` is the cycle
        the last data beat arrives and ``next_slot`` the command-bus cycle
        from which the *next* instruction's commands may start.  Commands of
        consecutive instructions are pipelined: the next instruction only
        waits for the local C/A slots this one consumed, not for its
        tRP/tRCD/tCL latency chain, while the bank and rank state machines
        keep every later command legal (tCCD, tRRD, tFAW, data bus).

        The bank/rank state machine of :class:`~repro.dram.rank.Rank` /
        :class:`~repro.dram.bank.Bank` is inlined here (this is the
        simulator's hottest function): every command is issued at its
        ``earliest_issue_cycle``, so the legality re-checks of the generic
        ``issue`` path are redundant by construction.  ``decoded`` carries
        a precomputed ``(bank_group, bank_index, row)`` from
        :meth:`decode_bank_rows`.
        """
        if decoded is None:
            bank_group, bank_index, row, _ = self.decode_bank_row(
                instruction.daddr)
        else:
            bank_group, bank_index, row = decoded
        rank = self.dram_rank
        timing = rank.timing
        bank = rank.banks[bank_group * rank.banks_per_group + bank_index]
        current = self.current_cycle
        start = current if current > earliest_cycle else earliest_cycle
        cycle = start
        commands_issued = 0
        first_issue = None
        # The rank command decoder replays the compressed DDR cmd field; a
        # conflicting open row forces PRE+ACT even if the tag omitted them
        # (the host-side tags are hints based on consecutive addresses).
        if bank.open_row != row:
            if bank.open_row is not None:
                ready = bank.next_pre
                if ready > cycle:
                    cycle = ready
                bank.open_row = None
                bank.precharges += 1
                value = cycle + timing.tRP
                if value > bank.next_act:
                    bank.next_act = value
                commands_issued = 1
                first_issue = cycle
            ready = bank.next_act
            history = rank._act_history
            if len(history) >= 4:
                faw = history[-4] + timing.tFAW
                if faw > ready:
                    ready = faw
            last_act = rank._last_act_cycle
            if last_act is not None:
                rrd = last_act + (timing.tRRD_L
                                  if bank_group == rank._last_act_bank_group
                                  else timing.tRRD_S)
                if rrd > ready:
                    ready = rrd
            if ready > cycle:
                cycle = ready
            bank.open_row = row
            bank.activations += 1
            value = cycle + timing.tRCD
            if value > bank.next_read:
                bank.next_read = value
            value = cycle + timing.tRAS
            if value > bank.next_pre:
                bank.next_pre = value
            value = cycle + timing.tRC
            if value > bank.next_act:
                bank.next_act = value
            history.append(cycle)
            while len(history) > 4:
                history.popleft()
            rank._last_act_cycle = cycle
            rank._last_act_bank_group = bank_group
            commands_issued += 1
            if first_issue is None:
                first_issue = cycle
            self.stats.activations += 1
        finish = cycle
        bursts = instruction.vsize
        if bursts < 1:
            bursts = 1
        tCL = timing.tCL
        tCCD_L = timing.tCCD_L
        tCCD_S = timing.tCCD_S
        tBL = timing.tBL
        tRTP = timing.tRTP
        for _ in range(bursts):
            ready = bank.next_read
            last_col = rank._last_col_cycle
            if last_col is not None:
                ccd = last_col + (tCCD_L
                                  if bank_group == rank._last_col_bank_group
                                  else tCCD_S)
                if ccd > ready:
                    ready = ccd
            bus = rank.next_data_bus_free - tCL
            if bus > ready:
                ready = bus
            if ready > cycle:
                cycle = ready
            bank.reads += 1
            finish = cycle + tCL + tBL
            value = cycle + tCCD_L
            if value > bank.next_read:
                bank.next_read = value
            value = cycle + tRTP
            if value > bank.next_pre:
                bank.next_pre = value
            rank._last_col_cycle = cycle
            rank._last_col_bank_group = bank_group
            if finish > rank.next_data_bus_free:
                rank.next_data_bus_free = finish
            commands_issued += 1
            if first_issue is None:
                first_issue = cycle
            self.stats.dram_reads += 1
        self.stats.bytes_from_dram += instruction.vector_bytes
        next_slot = (start if start > first_issue else first_issue) \
            + commands_issued
        return finish, next_slot

    def execute_instruction(self, instruction, arrival_cycle=0,
                            decoded=None):
        """Execute one NMP-Inst; returns the cycle its Psum update completes.

        ``decoded`` optionally carries the precomputed ``(bank_group,
        bank_index, row)`` of the instruction (see :meth:`decode_bank_rows`).
        """
        if self._kernel is not None and self._kernel_min_instructions <= 1:
            # One-element kernel call: the completion necessarily exceeds
            # the entry current_cycle, so the return value is identical
            # to the legacy path below.
            return self._kernel.execute_objects(
                (instruction,), (arrival_cycle,), 1,
                decoded=None if decoded is None else
                ((decoded[0],), (decoded[1],), (decoded[2],)))
        self.stats.instructions += 1
        start = max(self.current_cycle, arrival_cycle)
        if self.cache is not None:
            hit = self.cache.lookup(instruction.daddr,
                                    locality_hint=instruction.locality_bit)
            if hit:
                self.stats.cache_hits += 1
                self.stats.bytes_from_cache += instruction.vector_bytes
                data_ready = start + self.config.cache_latency_cycles
                next_free = start + self.config.cache_latency_cycles
            else:
                if instruction.locality_bit:
                    self.stats.cache_misses += 1
                else:
                    self.stats.cache_bypasses += 1
                data_ready, next_free = self._dram_read(instruction, start,
                                                        decoded=decoded)
        else:
            data_ready, next_free = self._dram_read(instruction, start,
                                                    decoded=decoded)
        # Datapath: weighted multiply (if any) then accumulate.  The pipeline
        # overlaps with the next memory access, so only the final add depth
        # shows up in the completion time of this instruction.
        compute = self.config.adder_latency_cycles
        if instruction.weight != 1.0:
            compute += self.config.multiplier_latency_cycles
        completion = data_ready + compute
        self._psum_counts[instruction.psum_tag] = \
            self._psum_counts.get(instruction.psum_tag, 0) + 1
        busy_delta = max(0, next_free - start)
        self.stats.busy_cycles += busy_delta
        # Memory accesses are pipelined: the next instruction's DDR commands
        # can be scheduled as soon as this one's last command slot is past
        # (bank/rank/data-bus legality is enforced by the DRAM rank model).
        self.current_cycle = next_free
        return completion

    def _estimated_start(self, instruction, arrival_cycle):
        """Earliest cycle the first command of an instruction could issue.

        Used by the windowed scheduler to avoid head-of-line blocking: an
        instruction whose bank is still serving tRAS/tRC from an earlier
        access can be deferred in favour of one whose bank is ready.
        """
        start = max(self.current_cycle, arrival_cycle)
        if self.cache is not None and instruction.locality_bit and \
                self.cache.contains(instruction.daddr):
            return start
        bank_group, bank_index, row, _ = self.decode_bank_row(
            instruction.daddr)
        bank = self.dram_rank.bank(bank_group, bank_index)
        if bank.is_row_hit(row):
            command = CommandType.RD
        elif bank.is_row_closed():
            command = CommandType.ACT
        else:
            command = CommandType.PRE
        return self.dram_rank.earliest_issue_cycle(
            command, bank_group, bank_index, start)

    def execute_instructions(self, instructions, arrival_cycles=None,
                             reorder_window=16, decoded=None):
        """Execute a list of instructions; returns the last completion cycle.

        Instructions are issued FR-FCFS-style within a small reorder window
        (the host-side memory controller performs this reordering inside a
        packet per the paper): among the ``reorder_window`` oldest pending
        instructions, the one whose bank can accept a command earliest goes
        first.  Correctness is unaffected because each pooling accumulates
        into its own PsumTag register.

        The selection is cycle-identical to evaluating
        :meth:`_estimated_start` for every window member on every
        iteration, but avoids that quadratic re-computation: per-bank
        command/readiness is read once per member from the live bank state,
        the rank-level ACT/RD components are memoised per bank group and
        invalidated lazily (only an instruction that touched DRAM can
        change them), and members whose earliest possible start already
        matches or exceeds the best estimate are skipped outright.
        ``decoded`` optionally carries ``(bank_groups, banks, rows)`` lists
        from :meth:`decode_bank_rows`, so callers that already decoded the
        packet (the channel does) don't pay for it twice.
        """
        count = len(instructions)
        if arrival_cycles is None:
            arrival_cycles = [0] * count
        if len(arrival_cycles) != count:
            raise ValueError("arrival_cycles must match instructions")
        last_completion = self.current_cycle
        if not count:
            return last_completion
        if self._kernel is not None and \
                count >= self._kernel_min_instructions:
            return self._kernel.execute_objects(
                instructions, arrival_cycles, reorder_window,
                decoded=decoded)
        if decoded is None:
            decoded = self.decode_bank_rows(
                [inst.daddr for inst in instructions])
        bank_groups, bank_indices, rows = decoded
        banks_per_group = self.config.banks_per_group
        rank = self.dram_rank
        banks = rank.banks
        timing = rank.timing
        cache = self.cache
        entries = cache._entries if cache is not None else None
        daddrs = [inst.daddr for inst in instructions]
        localities = [inst.locality_bit for inst in instructions]
        flats = [bank_groups[i] * banks_per_group + bank_indices[i]
                 for i in range(count)]
        tCL = timing.tCL
        tCCD_L = timing.tCCD_L
        tCCD_S = timing.tCCD_S
        tRRD_L = timing.tRRD_L
        tRRD_S = timing.tRRD_S
        tFAW = timing.tFAW
        window_size = reorder_window if reorder_window > 1 else 1
        window = list(range(window_size if window_size < count else count))
        next_index = len(window)
        # Rank-level earliest-issue components, memoised per bank group and
        # cleared whenever an executed instruction touched DRAM (cache hits
        # leave both the rank and every bank untouched).
        act_part = {}
        rd_part = {}
        execute = self.execute_instruction
        while window:
            current = self.current_cycle
            best_pos = 0
            best_estimate = None
            for pos, index in enumerate(window):
                arrival = arrival_cycles[index]
                start = arrival if arrival > current else current
                if best_estimate is not None and start >= best_estimate:
                    # estimate >= start, so this member cannot win (ties
                    # keep the earliest window position, as before).
                    continue
                if entries is not None and localities[index] and \
                        daddrs[index] in entries:
                    estimate = start
                else:
                    bank = banks[flats[index]]
                    open_row = bank.open_row
                    bank_group = bank_groups[index]
                    if open_row == rows[index]:
                        ready = bank.next_read
                        part = rd_part.get(bank_group)
                        if part is None:
                            part = rank.next_data_bus_free - tCL
                            last_col = rank._last_col_cycle
                            if last_col is not None:
                                ccd = last_col + (
                                    tCCD_L if bank_group ==
                                    rank._last_col_bank_group else tCCD_S)
                                if ccd > part:
                                    part = ccd
                            rd_part[bank_group] = part
                        if part > ready:
                            ready = part
                    elif open_row is None:
                        ready = bank.next_act
                        part = act_part.get(bank_group)
                        if part is None:
                            part = 0
                            history = rank._act_history
                            if len(history) >= 4:
                                part = history[-4] + tFAW
                            last_act = rank._last_act_cycle
                            if last_act is not None:
                                rrd = last_act + (
                                    tRRD_L if bank_group ==
                                    rank._last_act_bank_group else tRRD_S)
                                if rrd > part:
                                    part = rrd
                            act_part[bank_group] = part
                        if part > ready:
                            ready = part
                    else:
                        ready = bank.next_pre
                    estimate = start if start > ready else ready
                if best_estimate is None or estimate < best_estimate:
                    best_estimate = estimate
                    best_pos = pos
            index = window.pop(best_pos)
            if next_index < count:
                window.append(next_index)
                next_index += 1
            resident = entries is not None and daddrs[index] in entries
            completion = execute(
                instructions[index], arrival_cycle=arrival_cycles[index],
                decoded=(bank_groups[index], bank_indices[index],
                         rows[index]))
            if completion > last_completion:
                last_completion = completion
            if not resident:
                act_part.clear()
                rd_part.clear()
        return last_completion

    @property
    def supports_packed(self):
        """True when the array-native kernel entry point is available."""
        return self._kernel is not None

    def execute_packed(self, packed, arrival_cycles, reorder_window=16):
        """Array-native twin of :meth:`execute_instructions`.

        ``packed`` is a :class:`~repro.core.instruction.PackedInstructions`
        (flat numpy arrays, no NMPInstruction objects); callers must check
        :attr:`supports_packed` first.  Bit-identical to the object path.
        """
        kernel = self._kernel
        if kernel is None:
            raise RuntimeError("kernels are disabled; use "
                               "execute_instructions instead")
        daddrs = packed.daddrs
        if not len(daddrs):
            return self.current_cycle
        bank_groups, banks, rows = _kernels.pack_decoded(self.config, daddrs)
        return kernel.execute_arrays(
            daddrs, packed.vsizes, packed.weighted, packed.localities,
            packed.psum_tags, arrival_cycles, bank_groups, banks, rows,
            reorder_window)

    # ------------------------------------------------------------------ #
    def psum_count(self, psum_tag):
        """Number of vectors accumulated into a PsumTag so far."""
        return self._psum_counts.get(psum_tag, 0)

    def reset_psums(self):
        """Clear the partial-sum register file (between packets)."""
        self._psum_counts.clear()

    def reset(self):
        """Reset timing state, cache contents and statistics."""
        self.dram_rank = Rank(self.config.timing,
                              num_bank_groups=self.config.num_bank_groups,
                              banks_per_group=self.config.banks_per_group,
                              rank_index=self.rank_index)
        if self.cache is not None:
            self.cache.flush()
            self.cache.reset_stats()
        self.stats = RankNMPStats()
        self._psum_counts.clear()
        self.current_cycle = 0
        if self._kernel is not None:
            self._kernel.reset()
