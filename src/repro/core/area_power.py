"""Area and power overhead model (Table II).

The paper reports, for a 40 nm implementation at 250 MHz:

* RecNMP-base (no RankCache): 0.34 mm^2, 151.3 mW per PU,
* RecNMP-opt  (with RankCache): 0.54 mm^2, 184.2 mW per PU,
* Chameleon (8 CGRA cores per DIMM): 8.34 mm^2, 3138.6-3251.8 mW.

The model decomposes the PU into its blocks (arithmetic datapath, control,
instruction buffers, RankCache SRAM) so configurations other than the
published ones (e.g. different cache sizes or rank counts) can be estimated,
while the defaults reproduce Table II exactly.
"""

from dataclasses import dataclass


# Published reference numbers (Table II).
CHAMELEON_AREA_MM2 = 8.34
CHAMELEON_POWER_MW = (3138.6, 3251.8)
TYPICAL_DIMM_POWER_W = 13.0
TYPICAL_BUFFER_CHIP_AREA_MM2 = 100.0


@dataclass
class OverheadReport:
    """Area/power estimate of one RecNMP processing unit."""

    area_mm2: float
    power_mw: float
    breakdown: dict

    def area_fraction_of_buffer_chip(self,
                                     buffer_area=TYPICAL_BUFFER_CHIP_AREA_MM2):
        """Fraction of a typical DIMM buffer chip the PU occupies."""
        return self.area_mm2 / buffer_area

    def power_fraction_of_dimm(self, dimm_power_w=TYPICAL_DIMM_POWER_W):
        """Fraction of a typical DIMM's power budget the PU consumes."""
        return (self.power_mw / 1_000.0) / dimm_power_w

    def as_dict(self):
        return {
            "area_mm2": self.area_mm2,
            "power_mw": self.power_mw,
            "breakdown": dict(self.breakdown),
            "area_fraction_of_buffer_chip":
                self.area_fraction_of_buffer_chip(),
            "power_fraction_of_dimm": self.power_fraction_of_dimm(),
        }


class AreaPowerModel:
    """Estimate PU area and power from its configuration.

    The block-level constants are calibrated so the default 2-rank PU with a
    128 KB RankCache per rank reproduces the Table II totals.
    """

    # Per-rank datapath + control logic (40 nm, 250 MHz).
    _LOGIC_AREA_PER_RANK_MM2 = 0.14
    _LOGIC_POWER_PER_RANK_MW = 65.0
    # DIMM-NMP shared front-end (protocol engine, adder tree, buffers).
    _DIMM_AREA_MM2 = 0.06
    _DIMM_POWER_MW = 21.3
    # RankCache SRAM per KB (Cacti-style scaling).
    _SRAM_AREA_PER_KB_MM2 = 0.20 / 256.0
    _SRAM_POWER_PER_KB_MW = 32.9 / 256.0

    def __init__(self, num_ranks=2, rankcache_kb=128, with_cache=True):
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if rankcache_kb < 0:
            raise ValueError("rankcache_kb must be non-negative")
        self.num_ranks = int(num_ranks)
        self.rankcache_kb = float(rankcache_kb) if with_cache else 0.0
        self.with_cache = bool(with_cache)

    def estimate(self):
        """Return an :class:`OverheadReport` for the configured PU."""
        logic_area = self._LOGIC_AREA_PER_RANK_MM2 * self.num_ranks
        logic_power = self._LOGIC_POWER_PER_RANK_MW * self.num_ranks
        sram_area = (self._SRAM_AREA_PER_KB_MM2 * self.rankcache_kb
                     * self.num_ranks)
        sram_power = (self._SRAM_POWER_PER_KB_MW * self.rankcache_kb
                      * self.num_ranks)
        area = self._DIMM_AREA_MM2 + logic_area + sram_area
        power = self._DIMM_POWER_MW + logic_power + sram_power
        return OverheadReport(
            area_mm2=round(area, 3),
            power_mw=round(power, 1),
            breakdown={
                "dimm_nmp_area_mm2": self._DIMM_AREA_MM2,
                "rank_logic_area_mm2": logic_area,
                "rankcache_area_mm2": sram_area,
                "dimm_nmp_power_mw": self._DIMM_POWER_MW,
                "rank_logic_power_mw": logic_power,
                "rankcache_power_mw": sram_power,
            },
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def recnmp_base(cls, num_ranks=2):
        """The RecNMP-base configuration of Table II (no RankCache)."""
        return cls(num_ranks=num_ranks, rankcache_kb=0, with_cache=False)

    @classmethod
    def recnmp_opt(cls, num_ranks=2, rankcache_kb=128):
        """The RecNMP-opt configuration of Table II (with RankCache)."""
        return cls(num_ranks=num_ranks, rankcache_kb=rankcache_kb,
                   with_cache=True)

    @staticmethod
    def chameleon_reference():
        """Published Chameleon (8 CGRA accelerators) overhead for comparison."""
        return OverheadReport(
            area_mm2=CHAMELEON_AREA_MM2,
            power_mw=sum(CHAMELEON_POWER_MW) / 2.0,
            breakdown={"source": "Table II, Chameleon column"},
        )

    @staticmethod
    def comparison_table():
        """Reproduce Table II as a dictionary of configurations."""
        base = AreaPowerModel.recnmp_base().estimate()
        opt = AreaPowerModel.recnmp_opt().estimate()
        chameleon = AreaPowerModel.chameleon_reference()
        return {
            "RecNMP-base": base.as_dict(),
            "RecNMP-opt": opt.as_dict(),
            "Chameleon": chameleon.as_dict(),
        }
