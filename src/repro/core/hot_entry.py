"""Hot-entry profiling (Section III-D).

Before issuing the SLS requests of a batch, the host profiles the index
vector and marks the rows that repeat at least ``threshold`` times within
the batch.  Instructions touching those rows carry a set LocalityBit and are
allocated in the RankCache; all other lookups bypass it, which prevents
cold vectors from evicting hot ones.  The paper sweeps the threshold and
picks the value with the highest cache hit rate; profiling costs < 2 % of
end-to-end execution time.
"""

from collections import Counter
from dataclasses import dataclass, field

import numpy as np


@dataclass
class ProfileResult:
    """Output of profiling one batch of embedding lookups."""

    table_id: int
    threshold: int
    hot_rows: set = field(default_factory=set)
    access_counts: dict = field(default_factory=dict)

    @property
    def num_hot_rows(self):
        return len(self.hot_rows)

    @property
    def hot_access_fraction(self):
        """Fraction of accesses that land on hot rows."""
        total = sum(self.access_counts.values())
        if not total:
            return 0.0
        hot = sum(count for row, count in self.access_counts.items()
                  if row in self.hot_rows)
        return hot / total

    def is_hot(self, row_index):
        """True if the row was marked hot by the profiler."""
        return int(row_index) in self.hot_rows


class HotEntryProfiler:
    """Mark embedding rows that repeat within a batch of lookups.

    Parameters
    ----------
    threshold:
        A row is hot if it appears at least ``threshold`` times in the
        profiled batch (the paper's ``> t times`` criterion; we use >=).
    """

    def __init__(self, threshold=2):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)

    def profile(self, indices, table_id=0):
        """Profile one batch of row indices; returns a :class:`ProfileResult`."""
        indices = np.asarray(indices, dtype=np.int64)
        counts = Counter(int(i) for i in indices)
        hot_rows = {row for row, count in counts.items()
                    if count >= self.threshold}
        return ProfileResult(table_id=table_id, threshold=self.threshold,
                             hot_rows=hot_rows, access_counts=dict(counts))

    def profile_requests(self, requests):
        """Profile a list of :class:`~repro.dlrm.operators.SLSRequest`.

        Indices of requests targeting the same table are profiled together
        (they execute within the same batch window).  Returns a dictionary
        mapping table id to :class:`ProfileResult`.
        """
        per_table = {}
        for request in requests:
            per_table.setdefault(request.table_id, []).append(request.indices)
        results = {}
        for table_id, index_lists in per_table.items():
            combined = np.concatenate(index_lists) if index_lists else \
                np.empty(0, dtype=np.int64)
            results[table_id] = self.profile(combined, table_id=table_id)
        return results

    # ------------------------------------------------------------------ #
    @classmethod
    def sweep_threshold(cls, indices, cache, address_of, thresholds=(1, 2, 3,
                                                                     4, 6, 8)):
        """Pick the threshold that maximises RankCache hit rate.

        Replays the index stream through a fresh copy of ``cache`` for every
        candidate threshold.  ``address_of`` maps a row index to the DRAM
        address used as the cache key.  Returns ``(best_threshold,
        {threshold: hit_rate})``.
        """
        import copy

        indices = np.asarray(indices, dtype=np.int64)
        results = {}
        for threshold in thresholds:
            profiler = cls(threshold=threshold)
            profile = profiler.profile(indices)
            trial_cache = copy.deepcopy(cache)
            trial_cache.reset_stats()
            trial_cache.flush()
            for row in indices:
                trial_cache.lookup(address_of(int(row)),
                                   locality_hint=profile.is_hot(row))
            results[threshold] = trial_cache.hit_rate
        best = max(results, key=results.get)
        return best, results

    def profiling_overhead_fraction(self, batch_lookups,
                                    lookups_per_second=1e9,
                                    batch_time_seconds=None):
        """Estimate profiling cost as a fraction of end-to-end time.

        Counting index occurrences is one vectorised pass over the index
        array (about a nanosecond per index); for realistic end-to-end batch
        times the cost stays below the 2 % budget quoted in the paper.
        ``batch_time_seconds`` defaults to a conservative end-to-end model
        time of 256 B per lookup at 4 GB/s (memory-bound SLS plus the FC and
        framework time around it).
        """
        if batch_lookups < 0:
            raise ValueError("batch_lookups must be non-negative")
        profile_time = batch_lookups / lookups_per_second
        if batch_time_seconds is None:
            batch_time_seconds = max(batch_lookups * 256 / 4e9, 1e-9)
        return profile_time / (profile_time + batch_time_seconds)
