"""Host-side programming model and execution flow (Fig. 10).

RecNMP adopts a heterogeneous-computing programming model: the application
is split into host calls running on the CPU and NMP kernels offloaded to
the RecNMP processing units.  This module provides that host-facing layer:

* :class:`NMPMemoryAllocator` -- places buffers in the *Host* (cacheable) or
  *NMP* (host-non-cacheable) regions of the physical address space, mapping
  embedding tables page-aligned into the NMP region (the ``NMP::matrix``
  allocation of Fig. 10(a)) through the simplified OS page mapper.
* :class:`NMPKernel` -- a compiled SLS kernel: the packets of NMP-Insts plus
  the memory-mapped accumulation-counter configuration the memory controller
  writes before launching the packets.
* :class:`RecNMPRuntime` -- the OpenCL-like host runtime: it owns the
  allocator, the packet generator/scheduler and a
  :class:`~repro.core.simulator.RecNMPSimulator`; ``runtime.sls(...)``
  executes an SLS call *functionally* (returning the pooled vectors computed
  by the NumPy reference datapath) and *temporally* (returning the simulated
  RecNMP timing for the same lookups).
"""

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.instruction import NMPOpcode
from repro.core.simulator import RecNMPConfig, RecNMPSimulator
from repro.dlrm.operators import (
    SLSRequest,
    sparse_lengths_mean,
    sparse_lengths_sum,
    sparse_lengths_weighted_sum,
)


class MemoryRegion(enum.Enum):
    """Host-visible (cacheable) vs NMP (host-non-cacheable) memory."""

    HOST = "host"
    NMP = "nmp"


@dataclass
class Allocation:
    """One allocated buffer in the simulated physical address space."""

    name: str
    region: MemoryRegion
    base_address: int
    size_bytes: int
    row_bytes: int = 0

    @property
    def end_address(self):
        return self.base_address + self.size_bytes

    def row_address(self, row_index):
        """Physical address of a row of a table allocation."""
        if self.row_bytes <= 0:
            raise ValueError("allocation %r is not a table" % self.name)
        if not 0 <= row_index < self.size_bytes // self.row_bytes:
            raise IndexError("row %d out of range for %s"
                             % (row_index, self.name))
        return self.base_address + row_index * self.row_bytes


class NMPMemoryAllocator:
    """Bump allocator over the Host and NMP regions of physical memory.

    The NMP region holds the embedding tables (initialised by the host with
    a non-temporal hint, never cached on the host side); the Host region
    holds indices, lengths and the pooled outputs.  Tables are page-aligned
    so page colouring can pin them to ranks.
    """

    def __init__(self, nmp_region_base=0, host_region_base=1 << 40,
                 page_size=4096):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if host_region_base <= nmp_region_base:
            raise ValueError("host region must sit above the NMP region")
        self.page_size = int(page_size)
        self._cursors = {MemoryRegion.NMP: int(nmp_region_base),
                         MemoryRegion.HOST: int(host_region_base)}
        self._region_limits = {MemoryRegion.NMP: int(host_region_base),
                               MemoryRegion.HOST: None}
        self.allocations = {}

    def _align(self, value):
        remainder = value % self.page_size
        if remainder:
            value += self.page_size - remainder
        return value

    def allocate(self, name, size_bytes, region, row_bytes=0):
        """Allocate a named buffer; returns the :class:`Allocation`."""
        if name in self.allocations:
            raise ValueError("allocation %r already exists" % name)
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        base = self._align(self._cursors[region])
        limit = self._region_limits[region]
        if limit is not None and base + size_bytes > limit:
            raise MemoryError("NMP region exhausted allocating %r" % name)
        allocation = Allocation(name=name, region=region, base_address=base,
                                size_bytes=int(size_bytes),
                                row_bytes=int(row_bytes))
        self._cursors[region] = base + size_bytes
        self.allocations[name] = allocation
        return allocation

    def allocate_table(self, name, num_rows, row_bytes):
        """Allocate an embedding table in the NMP region (page aligned)."""
        return self.allocate(name, num_rows * row_bytes, MemoryRegion.NMP,
                             row_bytes=row_bytes)

    def allocate_host_buffer(self, name, size_bytes):
        """Allocate a host-cacheable buffer (indices, lengths, outputs)."""
        return self.allocate(name, size_bytes, MemoryRegion.HOST)

    def region_of(self, physical_address):
        """Which region an address belongs to (for coherence checks)."""
        if physical_address < 0:
            raise ValueError("physical_address must be non-negative")
        if physical_address < self._region_limits[MemoryRegion.NMP]:
            return MemoryRegion.NMP
        return MemoryRegion.HOST

    def __getitem__(self, name):
        return self.allocations[name]


@dataclass
class NMPKernel:
    """A compiled NMP kernel: packets plus counter configuration.

    ``counter_configuration`` maps ``(packet_id, psum_tag)`` to the number of
    vectors the rank/DIMM-NMP accumulation counters must see before the
    DIMM.Sum for that pooling is returned -- the memory-mapped register setup
    of Fig. 10(d).
    """

    requests: list
    packets: list
    opcode: NMPOpcode
    counter_configuration: dict = field(default_factory=dict)

    @property
    def num_packets(self):
        return len(self.packets)

    @property
    def num_instructions(self):
        return sum(len(packet) for packet in self.packets)

    @property
    def num_poolings(self):
        return sum(request.batch_size for request in self.requests)


@dataclass
class SLSExecution:
    """Result of one runtime SLS call: functional output plus timing."""

    output: np.ndarray
    kernel: NMPKernel
    result: object                    # RecNMPResult from the simulator

    @property
    def speedup_vs_baseline(self):
        return self.result.speedup_vs_baseline

    @property
    def simulated_cycles(self):
        return self.result.total_cycles


class RecNMPRuntime:
    """Host runtime tying allocation, compilation and execution together.

    Parameters
    ----------
    config:
        The :class:`RecNMPConfig` of the attached channel.
    tables:
        Mapping of table id to a NumPy array of embedding weights.  The
        runtime allocates each table in the NMP region and keeps the weights
        for the functional execution of kernels.
    """

    def __init__(self, config=None, tables=None):
        self.allocator = NMPMemoryAllocator()
        self._tables = {}
        self._table_allocations = {}
        if tables:
            for table_id, weights in tables.items():
                self.register_table(table_id, weights)
        self.config = config or RecNMPConfig()
        self.simulator = RecNMPSimulator(self.config,
                                         address_of=self._address_of)

    # ------------------------------------------------------------------ #
    # Memory management                                                  #
    # ------------------------------------------------------------------ #
    def register_table(self, table_id, weights):
        """Initialise an embedding table in NMP memory (Fig. 10(a))."""
        weights = np.asarray(weights, dtype=np.float32)
        if weights.ndim != 2:
            raise ValueError("embedding table must be 2-D")
        if table_id in self._tables:
            raise ValueError("table %r already registered" % table_id)
        row_bytes = weights.shape[1] * 4
        allocation = self.allocator.allocate_table(
            "emb_%s" % table_id, weights.shape[0], row_bytes)
        self._tables[table_id] = weights
        self._table_allocations[table_id] = allocation
        return allocation

    def _address_of(self, table_id, row):
        return self._table_allocations[table_id].row_address(row)

    def table_region(self, table_id):
        """Region of a table allocation (always the NMP region)."""
        return self._table_allocations[table_id].region

    # ------------------------------------------------------------------ #
    # Kernel compilation and launch                                      #
    # ------------------------------------------------------------------ #
    def compile_kernel(self, requests, opcode=NMPOpcode.SUM):
        """Compile SLS requests into an :class:`NMPKernel` (Fig. 10(b))."""
        requests = list(requests)
        for request in requests:
            if request.table_id not in self._tables:
                raise KeyError("table %r not registered" % request.table_id)
        packets = self.simulator.packet_generator.packets_for_requests(
            requests)
        counters = {}
        for packet in packets:
            for psum_tag, instructions in \
                    packet.instructions_by_psum().items():
                counters[(packet.packet_id, psum_tag)] = len(instructions)
        return NMPKernel(requests=requests, packets=packets, opcode=opcode,
                         counter_configuration=counters)

    def _functional(self, request, opcode):
        weights = self._tables[request.table_id]
        if opcode is NMPOpcode.SUM:
            return sparse_lengths_sum(weights, request.indices,
                                      request.lengths)
        if opcode is NMPOpcode.MEAN:
            return sparse_lengths_mean(weights, request.indices,
                                       request.lengths)
        if opcode in (NMPOpcode.WEIGHTED_SUM, NMPOpcode.WEIGHTED_MEAN):
            if request.weights is None:
                raise ValueError("weighted opcode requires request weights")
            output = sparse_lengths_weighted_sum(
                weights, request.indices, request.lengths, request.weights)
            if opcode is NMPOpcode.WEIGHTED_MEAN:
                output = output / np.asarray(request.lengths,
                                             dtype=np.float32)[:, None]
            return output
        raise NotImplementedError("opcode %r not supported by the runtime"
                                  % (opcode,))

    def sls(self, table_id, indices, lengths, weights=None,
            opcode=NMPOpcode.SUM, compare_baseline=True):
        """The ``NMP::SLS`` host call of Fig. 10(a).

        Executes the pooling functionally (NumPy reference datapath, which is
        bit-identical to what the rank-NMP adders compute) and simulates the
        offloaded execution, returning an :class:`SLSExecution`.
        """
        request = SLSRequest(table_id=table_id, indices=indices,
                             lengths=lengths, weights=weights)
        return self.run_kernel([request], opcode=opcode,
                               compare_baseline=compare_baseline)

    def run_kernel(self, requests, opcode=NMPOpcode.SUM,
                   compare_baseline=True):
        """Compile and launch a multi-request kernel."""
        kernel = self.compile_kernel(requests, opcode=opcode)
        outputs = [self._functional(request, opcode)
                   for request in kernel.requests]
        result = self.simulator.run_requests(kernel.requests,
                                             compare_baseline=compare_baseline)
        output = outputs[0] if len(outputs) == 1 else np.concatenate(outputs)
        return SLSExecution(output=output, kernel=kernel, result=result)
