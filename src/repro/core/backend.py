"""Execution backends for multi-channel RecNMP simulation.

The per-channel cycle simulations of
:class:`~repro.core.multi_channel.MultiChannelRecNMP` are independent
(disjoint table partitions, per-channel simulators), so *how* they are
executed is a policy separate from *what* they compute.  This module
provides that policy layer:

``serial``
    One channel after another on the calling thread.  The reference
    backend: zero coordination overhead, deterministic, and what every
    other backend must match bit for bit.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`, one worker per
    busy channel.  The cycle loops are pure Python, so threads buy
    nothing for compute (the GIL serialises them) -- this backend exists
    for API continuity and for timing models that release the GIL.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` with picklable
    ``(config, address_of, requests)`` work units, so N channels use N
    cores.  Worker-side baseline-cache entries are exported as
    ``(key, result)`` pairs and merged back into the parent's cache
    (:func:`repro.perf.baseline_cache.merge_baseline_entries`), so a
    baseline simulated in a worker is a cache hit for every later
    dispatch on any backend.

Every backend returns per-channel
:class:`~repro.core.simulator.RecNMPResult` objects in job order;
cross-backend equivalence is pinned by ``tests/test_core_backend.py``.
"""

import abc
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.core.simulator import RecNMPSimulator
from repro.perf.baseline_cache import (
    baseline_cache_stats,
    export_baseline_entries,
    merge_baseline_entries,
)


def _run_channel_job(job):
    """Simulate one channel's request partition (process-pool worker).

    The work unit is fully picklable: the channel :class:`RecNMPConfig`,
    the ``(table_id, row) -> physical address`` callable (a plain function
    or bound method of a picklable object; ``None`` selects the
    simulator's default dense layout), the channel's requests and the
    baseline flag.  Returns the result plus the *new* baseline-cache
    entries this job produced and the worker's hit/miss deltas, so the
    parent can merge them.
    """
    slot, config, address_of, requests, compare_baseline = job
    before_keys = {key for key, _ in export_baseline_entries()}
    stats_before = baseline_cache_stats()
    simulator = RecNMPSimulator(config, address_of=address_of)
    result = simulator.run_requests(requests,
                                    compare_baseline=compare_baseline)
    new_entries = [(key, value) for key, value in export_baseline_entries()
                   if key not in before_keys]
    stats_after = baseline_cache_stats()
    return (slot, result, new_entries,
            stats_after["hits"] - stats_before["hits"],
            stats_after["misses"] - stats_before["misses"])


class ParallelBackend(abc.ABC):
    """How the independent per-channel simulations are executed.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent workers; ``None`` defaults to one per
        busy channel.
    """

    #: Registry name (``"serial"`` / ``"thread"`` / ``"process"``).
    name = "parallel-backend"

    def __init__(self, max_workers=None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers

    @abc.abstractmethod
    def run_channels(self, coordinator, jobs, compare_baseline):
        """Execute ``jobs`` (``(slot, simulator, requests)`` triples).

        Returns the per-channel results in job order.
        """

    def shutdown(self):
        """Release any pooled workers (idempotent)."""

    def describe(self):
        if self.max_workers is None:
            return self.name
        return "%s(max_workers=%d)" % (self.name, self.max_workers)


class SerialBackend(ParallelBackend):
    """Run the channels one after another on the calling thread."""

    name = "serial"

    def run_channels(self, coordinator, jobs, compare_baseline):
        return [simulator.run_requests(requests,
                                       compare_baseline=compare_baseline)
                for _, simulator, requests in jobs]


class ThreadBackend(ParallelBackend):
    """Run the channels on a thread pool (one worker per busy channel).

    Pure-Python cycle loops hold the GIL, so this backend's value is
    overlap of any GIL-releasing work plus API continuity; use
    ``process`` for actual multi-core scaling.
    """

    name = "thread"

    def run_channels(self, coordinator, jobs, compare_baseline):
        if len(jobs) <= 1 or self.max_workers == 1:
            return SerialBackend.run_channels(self, coordinator, jobs,
                                              compare_baseline)
        workers = len(jobs) if self.max_workers is None else \
            min(self.max_workers, len(jobs))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(simulator.run_requests, requests,
                                   compare_baseline=compare_baseline)
                       for _, simulator, requests in jobs]
            return [future.result() for future in futures]


class ProcessBackend(ParallelBackend):
    """Run the channels on a process pool (true multi-core execution).

    Work units are rebuilt in the workers from the picklable channel
    config and address map, so each dispatch runs on *fresh* channel
    simulators -- the contract of the registry systems, which reset
    per run; a coordinator that relies on channel state accumulating
    across ``run_requests`` calls must use ``serial``/``thread``.  The
    pool is created lazily and kept alive across dispatches (amortising
    worker start-up); call :meth:`shutdown` (or
    ``MultiChannelRecNMP.close``) for deterministic cleanup.
    """

    name = "process"

    def __init__(self, max_workers=None):
        super().__init__(max_workers=max_workers)
        self._pool = None
        self._pool_workers = 0

    def _ensure_pool(self, wanted):
        if self.max_workers is not None:
            wanted = min(wanted, self.max_workers)
        wanted = max(1, wanted)
        if self._pool is not None and self._pool_workers < wanted:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=wanted)
            self._pool_workers = wanted
        return self._pool

    def run_channels(self, coordinator, jobs, compare_baseline):
        config = coordinator.channel_config
        address_of = coordinator.address_of
        try:
            pickle.dumps((config, address_of))
        except Exception as error:
            raise ValueError(
                "the process backend needs a picklable channel config and "
                "address_of callable (module-level function or bound method "
                "of a picklable object, not a lambda/closure); got: %s -- "
                "use backend='serial' or 'thread' instead" % (error,)
            ) from error
        pool = self._ensure_pool(len(jobs))
        futures = [pool.submit(_run_channel_job,
                               (slot, config, address_of, requests,
                                compare_baseline))
                   for slot, _, requests in jobs]
        results = [None] * len(jobs)
        merged = {}
        hits = 0
        misses = 0
        for position, future in enumerate(futures):
            _, result, entries, job_hits, job_misses = future.result()
            results[position] = result
            merged.update(entries)
            hits += job_hits
            misses += job_misses
        if merged or hits or misses:
            merge_baseline_entries(merged.items(), hits=hits, misses=misses)
        return results

    def shutdown(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0


#: Backend registry: name -> class.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def resolve_backend(backend, max_workers=None):
    """Normalise a ``backend=`` argument into a backend instance.

    Accepts ``None`` (the serial default -- fastest for the GIL-bound
    cycle loops and bit-identical to every other backend), a registry
    name, a :class:`ParallelBackend` subclass, or a ready instance
    (returned as-is; ``max_workers`` must then be unset -- the instance
    already carries its bound).
    """
    if isinstance(backend, ParallelBackend):
        if max_workers is not None:
            raise ValueError("pass max_workers to the backend constructor, "
                             "not alongside a ready backend instance")
        return backend
    if backend is None:
        return SerialBackend(max_workers=max_workers)
    if isinstance(backend, type) and issubclass(backend, ParallelBackend):
        return backend(max_workers=max_workers)
    try:
        cls = BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError("unknown backend %r; available: %s"
                         % (backend, ", ".join(sorted(BACKENDS)))) from None
    return cls(max_workers=max_workers)
