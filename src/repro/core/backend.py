"""Execution backends for multi-channel RecNMP simulation.

The per-channel cycle simulations of
:class:`~repro.core.multi_channel.MultiChannelRecNMP` are independent
(disjoint table partitions, per-channel simulators), so *how* they are
executed is a policy separate from *what* they compute.  This module
provides that policy layer:

``serial``
    One channel after another on the calling thread.  The reference
    backend: zero coordination overhead, deterministic, and what every
    other backend must match bit for bit.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`, one worker per
    busy channel.  The cycle loops are pure Python, so threads buy
    nothing for compute (the GIL serialises them) -- this backend exists
    for API continuity and for timing models that release the GIL.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` with picklable
    ``(config, address_of, requests)`` work units, so N channels use N
    cores.  Worker-side baseline-cache entries are exported as
    ``(key, result)`` pairs and merged back into the parent's cache
    (:func:`repro.perf.baseline_cache.merge_baseline_entries`), so a
    baseline simulated in a worker is a cache hit for every later
    dispatch on any backend.
``shared-memory``
    The process pool with a zero-copy transport: the channel config and
    address map are broadcast once per pool through the worker
    initializer, and the request arrays (indices/lengths/weights of
    every :class:`~repro.dlrm.operators.SLSRequest`) travel through one
    ``multiprocessing.shared_memory`` segment per dispatch instead of
    being pickled into every submit call.  Workers attach the segment
    and rebuild the requests as zero-copy numpy views; the parent
    unlinks the segment once all futures have resolved.

Every backend returns per-channel
:class:`~repro.core.simulator.RecNMPResult` objects in job order;
cross-backend equivalence is pinned by ``tests/test_core_backend.py``.
"""

import abc
import dataclasses
import gc
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.core.simulator import RecNMPSimulator
from repro.dlrm.operators import SLSRequest
from repro.perf.baseline_cache import (
    baseline_cache_stats,
    export_baseline_entries,
    merge_baseline_entries,
)


def _preflight_pickle(config, address_of, backend_name):
    """Pickle the worker context up front, naming the offending field.

    The process-family backends ship ``(config, address_of)`` to worker
    processes; a pickling failure inside a pool worker surfaces as an
    opaque ``BrokenProcessPool``, so the check runs in the parent first
    and the error says *which* input (down to the config field) cannot
    be pickled and what to do about it.  Returns the pickled payload so
    the shared-memory backend can reuse it as its broadcast fingerprint.
    """
    try:
        return pickle.dumps((config, address_of))
    except Exception as error:  # repro-lint: allow-broad-except-audit (preflight probe: any pickling failure becomes the actionable ValueError raised below)
        culprit = "the channel config"
        try:
            pickle.dumps(address_of)
        except Exception:  # repro-lint: allow-broad-except-audit (probing which input fails to pickle; the culprit is named in the raised error)
            culprit = ("the address_of callable %r (module-level functions "
                       "and bound methods of picklable objects work; "
                       "lambdas and closures do not)" % (address_of,))
        else:
            if dataclasses.is_dataclass(config):
                for spec in dataclasses.fields(config):
                    try:
                        pickle.dumps(getattr(config, spec.name))
                    except Exception:  # repro-lint: allow-broad-except-audit (probing which config field fails to pickle; the culprit is named in the raised error)
                        culprit = ("the channel config field %r"
                                   % spec.name)
                        break
        raise ValueError(
            "the %s backend ships work units to worker processes and "
            "needs picklable inputs, but %s is not picklable (%s) -- "
            "use backend='serial' or 'thread' instead"
            % (backend_name, culprit, error)) from error


def _run_channel_job(job):
    """Simulate one channel's request partition (process-pool worker).

    The work unit is fully picklable: the channel :class:`RecNMPConfig`,
    the ``(table_id, row) -> physical address`` callable (a plain function
    or bound method of a picklable object; ``None`` selects the
    simulator's default dense layout), the channel's requests and the
    baseline flag.  Returns the result plus the *new* baseline-cache
    entries this job produced and the worker's hit/miss deltas, so the
    parent can merge them.
    """
    slot, config, address_of, requests, compare_baseline = job
    before_keys = {key for key, _ in export_baseline_entries()}
    stats_before = baseline_cache_stats()
    simulator = RecNMPSimulator(config, address_of=address_of)
    result = simulator.run_requests(requests,
                                    compare_baseline=compare_baseline)
    new_entries = [(key, value) for key, value in export_baseline_entries()
                   if key not in before_keys]
    stats_after = baseline_cache_stats()
    return (slot, result, new_entries,
            stats_after["hits"] - stats_before["hits"],
            stats_after["misses"] - stats_before["misses"])


#: Worker-global context broadcast once per pool by the shared-memory
#: backend's initializer (instead of pickled per job): ``(config,
#: address_of)`` for channel jobs, ``(node_system, node_overrides)`` for
#: node-level serving jobs.  ``_WORKER_CONTEXT_PAYLOAD`` keeps the raw
#: pickled bytes as the node-system cache key.
_WORKER_CONTEXT = None
_WORKER_CONTEXT_PAYLOAD = None


def _init_shm_worker(payload):
    """Pool initializer: install the broadcast worker context."""
    global _WORKER_CONTEXT, _WORKER_CONTEXT_PAYLOAD
    _WORKER_CONTEXT_PAYLOAD = payload
    _WORKER_CONTEXT = pickle.loads(payload)


#: Per-worker cache of node systems built for serving jobs, keyed by the
#: pickled ``(node_system, node_overrides)`` spec.  Registry systems
#: reset per run, so a cached instance answers every later batch of the
#: same cluster without paying system construction again.
_WORKER_NODE_SYSTEMS = {}


def _node_system_for(spec_payload):
    """Build (or fetch the cached) node system for a pickled spec."""
    system = _WORKER_NODE_SYSTEMS.get(spec_payload)
    if system is None:
        from repro.systems.registry import build_system

        name, overrides = pickle.loads(spec_payload)
        system = build_system(name, **overrides)
        _WORKER_NODE_SYSTEMS[spec_payload] = system
    return system


def _preflight_node_spec(node_system, node_overrides, backend_name):
    """Pickle a node spec up front, naming the offending override.

    The node-level serving path rebuilds each node *by registry name* in
    the workers, so only ``(node_system, node_overrides)`` crosses the
    process boundary -- and a bad override must fail here with its name,
    not as an opaque pool error.  Returns the pickled spec payload.
    """
    try:
        return pickle.dumps((node_system, dict(node_overrides)))
    except Exception as error:  # repro-lint: allow-broad-except-audit (preflight probe: any pickling failure becomes the actionable ValueError raised below)
        culprit = "the node spec"
        for key, value in node_overrides.items():
            try:
                pickle.dumps(value)
            except Exception:  # repro-lint: allow-broad-except-audit (probing which override fails to pickle; the culprit is named in the raised error)
                culprit = ("the node override %r (%r; module-level "
                           "functions and bound methods of picklable "
                           "objects work; lambdas and closures do not)"
                           % (key, value))
                break
        raise ValueError(
            "the %s backend rebuilds serving nodes in worker processes "
            "and needs a picklable node spec, but %s is not picklable "
            "(%s) -- use backend='serial' or 'thread' instead"
            % (backend_name, culprit, error)) from error


#: Per-worker cache of rebuilt sweep clusters, keyed by the pickled
#: sweep spec.  A worker serving several points of the same sweep
#: rebuilds the cluster once; its service-time cache then answers
#: compositions repeated across that worker's points.
_WORKER_SWEEP_CLUSTERS = {}

#: Per-worker cache of unpickled sweep parameters (frontend, engine,
#: service model, SLO policy, admission controller), keyed by payload.
_WORKER_SWEEP_PARAMS = {}


def _sweep_cluster_for(spec_payload):
    """Rebuild (or fetch the cached) sweep cluster for a pickled spec."""
    cluster = _WORKER_SWEEP_CLUSTERS.get(spec_payload)
    if cluster is None:
        from repro.serving.cluster import build_sweep_cluster

        cluster = build_sweep_cluster(pickle.loads(spec_payload))
        _WORKER_SWEEP_CLUSTERS[spec_payload] = cluster
    return cluster


def _sweep_params_for(params_payload):
    """Unpickle (or fetch the cached) shared sweep parameters."""
    params = _WORKER_SWEEP_PARAMS.get(params_payload)
    if params is None:
        params = pickle.loads(params_payload)
        _WORKER_SWEEP_PARAMS[params_payload] = params
    return params


def _preflight_sweep_pickle(value, backend_name, what):
    """Pickle a sweep input up front with an actionable error."""
    try:
        return pickle.dumps(value)
    except Exception as error:  # repro-lint: allow-broad-except-audit (preflight probe: re-raised as an actionable ValueError naming the sweep input)
        raise ValueError(
            "the %s backend runs sweep points in worker processes and "
            "needs %s to be picklable (%s) -- run the sweep with "
            "backend='serial' or 'thread' instead" % (backend_name, what,
                                                      error)) from error


def _run_sweep_point(job):
    """Simulate one QPS point on a worker-local cluster rebuild.

    The cluster is rebuilt from the pickled sweep spec (cached per
    worker) and the shared simulate parameters come from their own
    cached payload.  ``simulate`` resets routing state per run, so a
    point's report is a pure function of its query stream -- identical
    whether it runs here or in the parent.  Returns the report plus the
    *new* service-cache entries and counter deltas this point produced
    (and the baseline-cache deltas, as every process-family job does) so
    the parent can merge them.
    """
    slot, spec_payload, params_payload, queries = job
    cluster = _sweep_cluster_for(spec_payload)
    frontend, engine, model, slo_policy, admission = \
        _sweep_params_for(params_payload)
    before = cluster.export_service_state()
    before_keys = {key for key, _ in before["entries"]}
    baseline_before_keys = {key for key, _ in export_baseline_entries()}
    baseline_before = baseline_cache_stats()
    report = cluster.simulate(queries, frontend=frontend, engine=engine,
                              service_model=model, slo_policy=slo_policy,
                              admission=admission)
    after = cluster.export_service_state()
    delta = {
        "entries": [(key, value) for key, value in after["entries"]
                    if key not in before_keys],
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        "exact_simulations": (after["exact_simulations"]
                              - before["exact_simulations"]),
        "dedup_hits": after["dedup_hits"] - before["dedup_hits"],
    }
    for counter in ("store_hits", "store_misses", "store_puts"):
        if counter in after:
            delta[counter] = after[counter] - before.get(counter, 0)
    baseline_entries = [(key, value)
                        for key, value in export_baseline_entries()
                        if key not in baseline_before_keys]
    baseline_after = baseline_cache_stats()
    return (slot, report, delta, baseline_entries,
            baseline_after["hits"] - baseline_before["hits"],
            baseline_after["misses"] - baseline_before["misses"])


def _run_node_job(job):
    """Node-level serving job: one node's shard of one batch.

    The node system is rebuilt from the registry spec (cached per worker
    by spec payload) and the shard's service time returned together with
    the worker's new baseline-cache entries, mirroring
    :func:`_run_channel_job`.
    """
    slot, spec_payload, shard = job
    system = _node_system_for(spec_payload)
    before_keys = {key for key, _ in export_baseline_entries()}
    stats_before = baseline_cache_stats()
    service_us = system.service_time_us(shard)
    new_entries = [(key, value) for key, value in export_baseline_entries()
                   if key not in before_keys]
    stats_after = baseline_cache_stats()
    return (slot, service_us, new_entries,
            stats_after["hits"] - stats_before["hits"],
            stats_after["misses"] - stats_before["misses"])


def _pack_requests(jobs):
    """Concatenate all jobs' request arrays into one shared segment.

    Returns ``(shm, descriptors_per_job)`` where each descriptor is
    ``(table_id, indices_offset, num_indices, lengths_offset,
    num_lengths, weights_offset_or_-1, metadata_or_None)`` with offsets
    in bytes into the segment.  Offsets stay 8-byte aligned so the
    worker-side int64/float32 views are always aligned.
    """
    from multiprocessing import shared_memory

    plan = []
    offset = 0

    def reserve(array):
        nonlocal offset
        start = offset
        plan.append((array, start))
        offset = (offset + array.nbytes + 7) & ~7
        return start

    descriptors_per_job = []
    for _, _, requests in jobs:
        descriptors = []
        for request in requests:
            indices_offset = reserve(request.indices)
            lengths_offset = reserve(request.lengths)
            weights_offset = (reserve(request.weights)
                              if request.weights is not None else -1)
            descriptors.append((
                int(request.table_id),
                indices_offset, int(request.indices.shape[0]),
                lengths_offset, int(request.lengths.shape[0]),
                weights_offset,
                request.metadata or None,
            ))
        descriptors_per_job.append(descriptors)
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    for array, start in plan:
        np.ndarray(array.shape, dtype=array.dtype,
                   buffer=shm.buf, offset=start)[:] = array
    return shm, descriptors_per_job


def _attach_requests(shm, descriptors):
    """Rebuild SLSRequests as zero-copy views into the shared segment."""
    requests = []
    for (table_id, indices_offset, num_indices, lengths_offset,
            num_lengths, weights_offset, metadata) in descriptors:
        indices = np.ndarray((num_indices,), dtype=np.int64,
                             buffer=shm.buf, offset=indices_offset)
        lengths = np.ndarray((num_lengths,), dtype=np.int64,
                             buffer=shm.buf, offset=lengths_offset)
        weights = None
        if weights_offset >= 0:
            weights = np.ndarray((num_indices,), dtype=np.float32,
                                 buffer=shm.buf, offset=weights_offset)
        requests.append(SLSRequest(table_id=table_id, indices=indices,
                                   lengths=lengths, weights=weights,
                                   metadata=metadata or {}))
    return requests


def _run_shm_job(job):
    """Shared-memory twin of :func:`_run_channel_job`.

    The config and address map come from the initializer-broadcast
    worker context; the request arrays are read in place from the named
    segment.  Every view is dropped before the segment is closed (a
    still-exported buffer would raise ``BufferError``), and the
    worker-side resource-tracker registration is handled so the
    *parent's* unlink stays the single point of segment removal (on
    Python < 3.13 each attach registers the segment with the attaching
    process's tracker).
    """
    slot, shm_name, descriptors, compare_baseline = job
    config, address_of = _WORKER_CONTEXT
    import multiprocessing
    from multiprocessing import resource_tracker, shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    if multiprocessing.get_start_method() != "fork":
        # Under spawn/forkserver the worker has its *own* resource
        # tracker, and the attach above registered the segment with it;
        # left in place, the worker's exit would unlink a segment the
        # parent owns.  Under fork the tracker is shared with the parent
        # and the attach registration is a set no-op -- unregistering
        # here would instead break the parent's unlink.
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # repro-lint: allow-broad-except-audit (best-effort tracker unregister on a private API; the attach already succeeded and a failure only risks a spurious unlink warning)
            pass
    try:
        requests = _attach_requests(shm, descriptors)
        before_keys = {key for key, _ in export_baseline_entries()}
        stats_before = baseline_cache_stats()
        simulator = RecNMPSimulator(config, address_of=address_of)
        result = simulator.run_requests(requests,
                                        compare_baseline=compare_baseline)
        new_entries = [(key, value)
                       for key, value in export_baseline_entries()
                       if key not in before_keys]
        stats_after = baseline_cache_stats()
        del simulator, requests
        return (slot, result, new_entries,
                stats_after["hits"] - stats_before["hits"],
                stats_after["misses"] - stats_before["misses"])
    finally:
        try:
            shm.close()
        except BufferError:
            # A straggling view kept the buffer exported; collect the
            # cycle and retry once before giving up (the mapping would
            # then persist until the worker is recycled -- harmless).
            gc.collect()
            try:
                shm.close()
            except BufferError:
                pass


def _run_shm_node_job(job):
    """Shared-memory twin of :func:`_run_node_job`.

    The node spec comes from the initializer-broadcast context (its raw
    payload doubles as the node-system cache key) and the shard's
    request arrays are read in place from the named segment, with the
    same view-release and resource-tracker care as :func:`_run_shm_job`.
    """
    slot, shm_name, descriptors = job
    import multiprocessing
    from multiprocessing import resource_tracker, shared_memory

    system = _node_system_for(_WORKER_CONTEXT_PAYLOAD)
    shm = shared_memory.SharedMemory(name=shm_name)
    if multiprocessing.get_start_method() != "fork":
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # repro-lint: allow-broad-except-audit (best-effort tracker unregister on a private API; the attach already succeeded and a failure only risks a spurious unlink warning)
            pass
    try:
        shard = _attach_requests(shm, descriptors)
        before_keys = {key for key, _ in export_baseline_entries()}
        stats_before = baseline_cache_stats()
        service_us = system.service_time_us(shard)
        new_entries = [(key, value)
                       for key, value in export_baseline_entries()
                       if key not in before_keys]
        stats_after = baseline_cache_stats()
        del shard
        return (slot, service_us, new_entries,
                stats_after["hits"] - stats_before["hits"],
                stats_after["misses"] - stats_before["misses"])
    finally:
        try:
            shm.close()
        except BufferError:
            gc.collect()
            try:
                shm.close()
            except BufferError:
                pass


class ParallelBackend(abc.ABC):
    """How the independent per-channel simulations are executed.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent workers; ``None`` defaults to one per
        busy channel.
    """

    #: Registry name (``"serial"`` / ``"thread"`` / ``"process"``).
    name = "parallel-backend"

    def __init__(self, max_workers=None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers

    @abc.abstractmethod
    def run_channels(self, coordinator, jobs, compare_baseline):
        """Execute ``jobs`` (``(slot, simulator, requests)`` triples).

        Returns the per-channel results in job order.
        """

    def run_service_jobs(self, cluster, jobs):
        """Execute node-level serving jobs (``(slot, node, shard)``).

        One job is one serving node's shard of one batch; the return
        value is the per-job service time in microseconds, in job
        order.  The default runs the cluster's own (in-process) node
        systems serially; the process-family backends rebuild the nodes
        from ``cluster.node_system``/``cluster.node_overrides`` in their
        workers (cached per worker by spec) so the per-node simulations
        of one batch use real cores.
        """
        return [node.service_time_us(shard) for _, node, shard in jobs]

    def run_sweep_points(self, cluster, point_queries, frontend=None,
                         engine=None, service_model=None, slo_policy=None,
                         admission=None):
        """Simulate one QPS sweep point per query stream, in order.

        ``point_queries`` holds the materialised query stream of every
        sweep point.  Points are independent given fresh routing state
        (``simulate`` resets it per run), so the parallel backends fan
        them out -- per-point cluster clones on threads, worker-side
        cluster rebuilds in processes -- and merge each worker's
        service-time cache/store deltas back into ``cluster``, exactly
        like the baseline-cache merge of the channel jobs.  Reports are
        bit-identical to this default, the serial loop on the cluster
        itself.
        """
        return [cluster.simulate(queries, frontend=frontend, engine=engine,
                                 service_model=service_model,
                                 slo_policy=slo_policy, admission=admission)
                for queries in point_queries]

    def shutdown(self):
        """Release any pooled workers (idempotent)."""

    def __enter__(self):
        """Backends are context managers: exit releases pooled workers."""
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.shutdown()
        return False

    def describe(self):
        if self.max_workers is None:
            return self.name
        return "%s(max_workers=%d)" % (self.name, self.max_workers)


class SerialBackend(ParallelBackend):
    """Run the channels one after another on the calling thread."""

    name = "serial"

    def run_channels(self, coordinator, jobs, compare_baseline):
        return [simulator.run_requests(requests,
                                       compare_baseline=compare_baseline)
                for _, simulator, requests in jobs]


class ThreadBackend(ParallelBackend):
    """Run the channels on a thread pool (one worker per busy channel).

    Pure-Python cycle loops hold the GIL, so this backend's value is
    overlap of any GIL-releasing work plus API continuity; use
    ``process`` for actual multi-core scaling.
    """

    name = "thread"

    def run_channels(self, coordinator, jobs, compare_baseline):
        if len(jobs) <= 1 or self.max_workers == 1:
            return SerialBackend.run_channels(self, coordinator, jobs,
                                              compare_baseline)
        workers = len(jobs) if self.max_workers is None else \
            min(self.max_workers, len(jobs))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(simulator.run_requests, requests,
                                   compare_baseline=compare_baseline)
                       for _, simulator, requests in jobs]
            return [future.result() for future in futures]

    def run_service_jobs(self, cluster, jobs):
        if len(jobs) <= 1 or self.max_workers == 1:
            return ParallelBackend.run_service_jobs(self, cluster, jobs)
        # Batched service resolution can place the same node object in
        # several jobs (one per pending batch), and a node system is not
        # safe to run concurrently with itself -- so jobs are grouped by
        # node and each group runs serially on one worker, preserving
        # per-node job order.
        groups, order = {}, []
        for position, (_, node, shard) in enumerate(jobs):
            group = groups.get(id(node))
            if group is None:
                group = groups[id(node)] = (node, [])
                order.append(id(node))
            group[1].append((position, shard))

        def run_group(node, work):
            return [(position, node.service_time_us(shard))
                    for position, shard in work]

        workers = len(order) if self.max_workers is None else \
            min(self.max_workers, len(order))
        results = [None] * len(jobs)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_group, *groups[node_id])
                       for node_id in order]
            for future in futures:
                for position, value in future.result():
                    results[position] = value
        return results

    def run_sweep_points(self, cluster, point_queries, frontend=None,
                         engine=None, service_model=None, slo_policy=None,
                         admission=None):
        """Run each point on its own in-process cluster clone.

        The clones isolate everything a point mutates -- routing
        counters, service cache, node state -- so points can run
        concurrently; their service-time entries and counters are merged
        back into the parent cluster in point order.  The cycle loops
        hold the GIL, so like the channel path this buys overlap rather
        than multi-core scaling -- use ``process`` for that.
        """
        if len(point_queries) <= 1 or self.max_workers == 1:
            return ParallelBackend.run_sweep_points(
                self, cluster, point_queries, frontend=frontend,
                engine=engine, service_model=service_model,
                slo_policy=slo_policy, admission=admission)
        import copy

        from repro.serving.cluster import build_sweep_cluster

        spec = cluster.sweep_spec()

        def run_point(queries):
            clone = build_sweep_cluster(spec)
            try:
                # Admission controllers (token levels) and SLO policies
                # carry per-run state; every point gets its own copies,
                # which reset-per-run semantics make identical to the
                # serial loop's shared, reset instances.
                report = clone.simulate(
                    queries, frontend=copy.deepcopy(frontend),
                    engine=engine, service_model=service_model,
                    slo_policy=copy.deepcopy(slo_policy),
                    admission=copy.deepcopy(admission))
                return report, clone.export_service_state()
            finally:
                clone.close()

        workers = len(point_queries) if self.max_workers is None else \
            min(self.max_workers, len(point_queries))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_point, queries)
                       for queries in point_queries]
            outcomes = [future.result() for future in futures]
        reports = []
        for report, state in outcomes:
            cluster.merge_service_state(state)
            reports.append(report)
        return reports


class ProcessBackend(ParallelBackend):
    """Run the channels on a process pool (true multi-core execution).

    Work units are rebuilt in the workers from the picklable channel
    config and address map, so each dispatch runs on *fresh* channel
    simulators -- the contract of the registry systems, which reset
    per run; a coordinator that relies on channel state accumulating
    across ``run_requests`` calls must use ``serial``/``thread``.  The
    pool is created lazily and kept alive across dispatches (amortising
    worker start-up); call :meth:`shutdown` (or
    ``MultiChannelRecNMP.close``) for deterministic cleanup.
    """

    name = "process"

    def __init__(self, max_workers=None):
        super().__init__(max_workers=max_workers)
        self._pool = None
        self._pool_workers = 0

    def _ensure_pool(self, wanted):
        if self.max_workers is not None:
            wanted = min(wanted, self.max_workers)
        wanted = max(1, wanted)
        if self._pool is not None and self._pool_workers < wanted:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=wanted)
            self._pool_workers = wanted
        return self._pool

    def run_channels(self, coordinator, jobs, compare_baseline):
        config = coordinator.channel_config
        address_of = coordinator.address_of
        _preflight_pickle(config, address_of, self.name)
        pool = self._ensure_pool(len(jobs))
        futures = [pool.submit(_run_channel_job,
                               (slot, config, address_of, requests,
                                compare_baseline))
                   for slot, _, requests in jobs]
        return self._collect_results(futures)

    def run_service_jobs(self, cluster, jobs):
        spec_payload = _preflight_node_spec(cluster.node_system,
                                            cluster.node_overrides,
                                            self.name)
        pool = self._ensure_pool(len(jobs))
        futures = [pool.submit(_run_node_job, (slot, spec_payload, shard))
                   for slot, _, shard in jobs]
        return self._collect_results(futures)

    def run_sweep_points(self, cluster, point_queries, frontend=None,
                         engine=None, service_model=None, slo_policy=None,
                         admission=None):
        """Fan the sweep points out to worker processes, one per point.

        Workers rebuild the cluster from its picklable sweep spec
        (cached per worker, so several points in one worker share a
        rebuild and its service cache) and receive the simulate
        parameters through one shared payload.  Each point's query
        stream is pickled into its job; the worker's report comes back
        with its service-cache and baseline-cache deltas, which are
        merged into the parent in point order -- statistics cover the
        whole sweep and later runs on any backend hit what the workers
        simulated.
        """
        if len(point_queries) <= 1:
            return ParallelBackend.run_sweep_points(
                self, cluster, point_queries, frontend=frontend,
                engine=engine, service_model=service_model,
                slo_policy=slo_policy, admission=admission)
        spec_payload = _preflight_sweep_pickle(
            cluster.sweep_spec(), self.name, "the cluster's sweep spec")
        params_payload = _preflight_sweep_pickle(
            (frontend, engine, service_model, slo_policy, admission),
            self.name, "the sweep parameters (frontend, engine, service "
            "model, SLO policy, admission controller)")
        pool = self._ensure_pool(len(point_queries))
        futures = [pool.submit(_run_sweep_point,
                               (slot, spec_payload, params_payload, queries))
                   for slot, queries in enumerate(point_queries)]
        reports = [None] * len(futures)
        baseline_merged = {}
        baseline_hits = baseline_misses = 0
        for position, future in enumerate(futures):
            (_, report, delta, baseline_entries,
             job_hits, job_misses) = future.result()
            reports[position] = report
            cluster.merge_service_state(delta)
            baseline_merged.update(baseline_entries)
            baseline_hits += job_hits
            baseline_misses += job_misses
        if baseline_merged or baseline_hits or baseline_misses:
            merge_baseline_entries(baseline_merged.items(),
                                   hits=baseline_hits,
                                   misses=baseline_misses)
        return reports

    def _collect_results(self, futures):
        """Gather job results in order, merging baseline-cache deltas."""
        results = [None] * len(futures)
        merged = {}
        hits = 0
        misses = 0
        for position, future in enumerate(futures):
            _, result, entries, job_hits, job_misses = future.result()
            results[position] = result
            merged.update(entries)
            hits += job_hits
            misses += job_misses
        if merged or hits or misses:
            merge_baseline_entries(merged.items(), hits=hits, misses=misses)
        return results

    def shutdown(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0


class SharedMemoryBackend(ProcessBackend):
    """The process pool with a zero-copy shared-memory transport.

    Differences from :class:`ProcessBackend`:

    * The ``(config, address_of)`` context is broadcast exactly once per
      pool through the worker initializer instead of being pickled into
      every submitted job; the pool is transparently rebuilt when the
      coordinator's context changes (the pickled payload doubles as the
      fingerprint).
    * Per dispatch, the request arrays of *all* jobs are written into a
      single ``multiprocessing.shared_memory`` segment and the workers
      rebuild their :class:`~repro.dlrm.operators.SLSRequest` lists as
      zero-copy numpy views -- only the per-request offsets travel over
      the pickle channel.  The parent unlinks the segment after the
      last future resolves.
    """

    name = "shared-memory"

    def __init__(self, max_workers=None):
        super().__init__(max_workers=max_workers)
        self._context_payload = None

    def _ensure_pool_with_context(self, wanted, payload):
        if self._pool is not None and payload != self._context_payload:
            self.shutdown()     # context changed: rebroadcast via a new pool
        if self.max_workers is not None:
            wanted = min(wanted, self.max_workers)
        wanted = max(1, wanted)
        if self._pool is not None and self._pool_workers < wanted:
            self.shutdown()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=wanted, initializer=_init_shm_worker,
                initargs=(payload,))
            self._pool_workers = wanted
            self._context_payload = payload
        return self._pool

    def run_channels(self, coordinator, jobs, compare_baseline):
        payload = _preflight_pickle(coordinator.channel_config,
                                    coordinator.address_of, self.name)
        pool = self._ensure_pool_with_context(len(jobs), payload)
        shm, descriptors_per_job = _pack_requests(jobs)
        try:
            futures = [pool.submit(_run_shm_job,
                                   (slot, shm.name, descriptors,
                                    compare_baseline))
                       for (slot, _, _), descriptors
                       in zip(jobs, descriptors_per_job)]
            return self._collect_results(futures)
        finally:
            # All futures have resolved (or raised): the segment is no
            # longer referenced by any worker and can be removed.
            shm.close()
            shm.unlink()

    def run_service_jobs(self, cluster, jobs):
        payload = _preflight_node_spec(cluster.node_system,
                                       cluster.node_overrides, self.name)
        pool = self._ensure_pool_with_context(len(jobs), payload)
        shm, descriptors_per_job = _pack_requests(jobs)
        try:
            futures = [pool.submit(_run_shm_node_job,
                                   (slot, shm.name, descriptors))
                       for (slot, _, _), descriptors
                       in zip(jobs, descriptors_per_job)]
            return self._collect_results(futures)
        finally:
            shm.close()
            shm.unlink()


#: Backend registry: name -> class.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
    SharedMemoryBackend.name: SharedMemoryBackend,
}


def resolve_backend(backend, max_workers=None):
    """Normalise a ``backend=`` argument into a backend instance.

    Accepts ``None`` (the serial default -- fastest for the GIL-bound
    cycle loops and bit-identical to every other backend), a registry
    name, a :class:`ParallelBackend` subclass, or a ready instance
    (returned as-is; ``max_workers`` must then be unset -- the instance
    already carries its bound).
    """
    if isinstance(backend, ParallelBackend):
        if max_workers is not None:
            raise ValueError("pass max_workers to the backend constructor, "
                             "not alongside a ready backend instance")
        return backend
    if backend is None:
        return SerialBackend(max_workers=max_workers)
    if isinstance(backend, type) and issubclass(backend, ParallelBackend):
        return backend(max_workers=max_workers)
    try:
        cls = BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError("unknown backend %r; available: %s"
                         % (backend, ", ".join(sorted(BACKENDS)))) from None
    return cls(max_workers=max_workers)
