"""The compressed NMP instruction (NMP-Inst) and NMP packet formats.

Figure 8(d) of the paper defines a 79-bit instruction with the fields:

======================  ======  =========================================
field                   bits    meaning
======================  ======  =========================================
opcode                  3       which SLS-family operator
DDR cmd                 3       presence of {ACT, RD, PRE} for this vector
Daddr                   32      DRAM address (rank, BG, BA, row, col)
vsize                   4       vector size in 64 B bursts
weight (FP32)           32      per-lookup weight for weighted SLS
LocalityBit             1       cacheability hint from hot-entry profiling
PsumTag                 4       which pooling of the packet this belongs to
======================  ======  =========================================

One NMP-Inst encodes *all* the DDR commands needed to fetch one embedding
vector, which is how RecNMP compresses C/A bandwidth by up to 8x.
"""

import enum
import struct
from dataclasses import dataclass, field

import numpy as np

# Bit masks of the DDR cmd field.
DDR_CMD_ACT = 0b100
DDR_CMD_RD = 0b010
DDR_CMD_PRE = 0b001

# Field widths (bits) of the 79-bit instruction.
_OPCODE_BITS = 3
_DDRCMD_BITS = 3
_DADDR_BITS = 32
_VSIZE_BITS = 4
_WEIGHT_BITS = 32
_LOCALITY_BITS = 1
_PSUMTAG_BITS = 4

TOTAL_INSTRUCTION_BITS = (_OPCODE_BITS + _DDRCMD_BITS + _DADDR_BITS
                          + _VSIZE_BITS + _WEIGHT_BITS + _LOCALITY_BITS
                          + _PSUMTAG_BITS)


class NMPOpcode(enum.IntEnum):
    """SLS-family operator selectors (Fig. 8(d) op-code list)."""

    SUM = 0
    MEAN = 1
    WEIGHTED_SUM = 2
    WEIGHTED_MEAN = 3
    WEIGHTED_SUM_8BIT = 4
    WEIGHTED_MEAN_8BIT = 5


def _float_to_bits(value):
    """Pack a float into its IEEE-754 FP32 bit pattern."""
    return struct.unpack("<I", struct.pack("<f", float(value)))[0]


def _bits_to_float(bits):
    """Unpack an IEEE-754 FP32 bit pattern into a float."""
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


@dataclass
class NMPInstruction:
    """One NMP-Inst: fetch one embedding vector and accumulate it.

    Attributes
    ----------
    opcode:
        The SLS-family operation.
    ddr_cmd:
        Bitwise OR of ``DDR_CMD_ACT``, ``DDR_CMD_RD``, ``DDR_CMD_PRE``; which
        DDR commands the rank-NMP command decoder must emit for this vector.
    daddr:
        Compressed DRAM address (packed rank / bank group / bank / row /
        column); for simulation purposes this is the physical byte address
        truncated to 32 bits of 64 B blocks.
    vsize:
        Vector size in 64-byte bursts (1 => 64 B, 4 => 256 B).
    weight:
        FP32 weight for weighted operators (1.0 otherwise).
    locality_bit:
        Cacheability hint produced by hot-entry profiling.
    psum_tag:
        Identifies which pooling (partial sum) of the packet the vector
        belongs to (4 bits => at most 16 poolings per packet).
    table_id, pooling_index, row_index:
        Simulation-side metadata (not part of the hardware encoding).
    """

    opcode: NMPOpcode = NMPOpcode.SUM
    ddr_cmd: int = DDR_CMD_ACT | DDR_CMD_RD | DDR_CMD_PRE
    daddr: int = 0
    vsize: int = 1
    weight: float = 1.0
    locality_bit: bool = True
    psum_tag: int = 0
    table_id: int = field(default=0, compare=False)
    pooling_index: int = field(default=0, compare=False)
    row_index: int = field(default=0, compare=False)

    def __post_init__(self):
        if not 0 <= int(self.ddr_cmd) < (1 << _DDRCMD_BITS):
            raise ValueError("ddr_cmd must fit in %d bits" % _DDRCMD_BITS)
        if not 0 <= int(self.daddr) < (1 << _DADDR_BITS):
            raise ValueError("daddr must fit in %d bits" % _DADDR_BITS)
        if not 1 <= int(self.vsize) < (1 << _VSIZE_BITS):
            raise ValueError("vsize must be in [1, %d)" % (1 << _VSIZE_BITS))
        if not 0 <= int(self.psum_tag) < (1 << _PSUMTAG_BITS):
            raise ValueError("psum_tag must fit in %d bits" % _PSUMTAG_BITS)
        self.opcode = NMPOpcode(self.opcode)
        self.ddr_cmd = int(self.ddr_cmd)
        self.daddr = int(self.daddr)
        self.vsize = int(self.vsize)
        self.psum_tag = int(self.psum_tag)
        self.locality_bit = bool(self.locality_bit)

    @classmethod
    def trusted(cls, opcode, ddr_cmd, daddr, vsize, weight, locality_bit,
                psum_tag, table_id=0, pooling_index=0, row_index=0):
        """Fast-path constructor for already-validated field values.

        Skips ``__init__``/``__post_init__`` (range checks and enum/int
        coercion): callers such as the packet generator produce fields
        that are valid by construction -- ``opcode`` must already be an
        :class:`NMPOpcode` and the int/bool fields plain Python values.
        Equality, hashing and every method behave identically to a
        normally-constructed instruction.
        """
        inst = object.__new__(cls)
        inst.opcode = opcode
        inst.ddr_cmd = ddr_cmd
        inst.daddr = daddr
        inst.vsize = vsize
        inst.weight = weight
        inst.locality_bit = locality_bit
        inst.psum_tag = psum_tag
        inst.table_id = table_id
        inst.pooling_index = pooling_index
        inst.row_index = row_index
        return inst

    # ------------------------------------------------------------------ #
    @property
    def needs_activate(self):
        return bool(self.ddr_cmd & DDR_CMD_ACT)

    @property
    def needs_read(self):
        return bool(self.ddr_cmd & DDR_CMD_RD)

    @property
    def needs_precharge(self):
        return bool(self.ddr_cmd & DDR_CMD_PRE)

    @property
    def vector_bytes(self):
        """Size of the embedding vector this instruction fetches."""
        return self.vsize * 64

    def ddr_command_count(self):
        """Number of DDR commands the rank command decoder will emit.

        A vector of ``vsize`` bursts needs ``vsize`` RD commands (consecutive
        columns) plus the optional ACT and PRE.
        """
        count = 0
        if self.needs_precharge:
            count += 1
        if self.needs_activate:
            count += 1
        if self.needs_read:
            count += self.vsize
        return count

    # ------------------------------------------------------------------ #
    # Hardware bit-level encoding (79 bits packed into an int).
    # ------------------------------------------------------------------ #
    def encode(self):
        """Pack the instruction into its 79-bit integer representation."""
        value = int(self.opcode)
        value = (value << _DDRCMD_BITS) | self.ddr_cmd
        value = (value << _DADDR_BITS) | self.daddr
        value = (value << _VSIZE_BITS) | self.vsize
        value = (value << _WEIGHT_BITS) | _float_to_bits(self.weight)
        value = (value << _LOCALITY_BITS) | int(self.locality_bit)
        value = (value << _PSUMTAG_BITS) | self.psum_tag
        return value

    @classmethod
    def decode(cls, value):
        """Inverse of :meth:`encode` (metadata fields are not recovered)."""
        if value < 0 or value >= (1 << TOTAL_INSTRUCTION_BITS):
            raise ValueError("encoded instruction out of range")
        psum_tag = value & ((1 << _PSUMTAG_BITS) - 1)
        value >>= _PSUMTAG_BITS
        locality = bool(value & ((1 << _LOCALITY_BITS) - 1))
        value >>= _LOCALITY_BITS
        weight = _bits_to_float(value & ((1 << _WEIGHT_BITS) - 1))
        value >>= _WEIGHT_BITS
        vsize = value & ((1 << _VSIZE_BITS) - 1)
        value >>= _VSIZE_BITS
        daddr = value & ((1 << _DADDR_BITS) - 1)
        value >>= _DADDR_BITS
        ddr_cmd = value & ((1 << _DDRCMD_BITS) - 1)
        value >>= _DDRCMD_BITS
        opcode = NMPOpcode(value & ((1 << _OPCODE_BITS) - 1))
        return cls(opcode=opcode, ddr_cmd=ddr_cmd, daddr=daddr, vsize=vsize,
                   weight=weight, locality_bit=locality, psum_tag=psum_tag)

    @staticmethod
    def bit_width():
        """Total instruction width in bits (79 per the paper)."""
        return TOTAL_INSTRUCTION_BITS


class PackedInstructions:
    """Struct-of-arrays view of a sequence of NMP-Insts.

    Carries exactly the fields the timing model consumes -- ``daddrs``,
    ``vsizes``, ``psum_tags`` (int64), ``weighted`` (weight != 1.0) and
    ``localities`` (bool) -- as flat numpy arrays, so the dispatch path
    can run without touching instruction objects (see
    :mod:`repro.core.kernels`).
    """

    __slots__ = ("daddrs", "vsizes", "weighted", "localities", "psum_tags")

    def __init__(self, daddrs, vsizes, weighted, localities, psum_tags):
        self.daddrs = daddrs
        self.vsizes = vsizes
        self.weighted = weighted
        self.localities = localities
        self.psum_tags = psum_tags

    def __len__(self):
        return len(self.daddrs)

    @classmethod
    def from_instructions(cls, instructions):
        count = len(instructions)
        return cls(
            np.fromiter((inst.daddr for inst in instructions),
                        np.int64, count),
            np.fromiter((inst.vsize for inst in instructions),
                        np.int64, count),
            np.fromiter((inst.weight != 1.0 for inst in instructions),
                        np.bool_, count),
            np.fromiter((inst.locality_bit for inst in instructions),
                        np.bool_, count),
            np.fromiter((inst.psum_tag for inst in instructions),
                        np.int64, count))

    def take(self, indices):
        """New PackedInstructions holding rows ``indices`` (in order)."""
        return PackedInstructions(
            self.daddrs[indices], self.vsizes[indices],
            self.weighted[indices], self.localities[indices],
            self.psum_tags[indices])

    @property
    def num_poolings(self):
        """Number of distinct PsumTags (poolings)."""
        return len(np.unique(self.psum_tags))


@dataclass
class NMPPacket:
    """A packet of NMP-Insts offloaded to one RecNMP processing unit.

    A packet carries one or more pooling operations (identified by PsumTag)
    of one SLS operator; the packet header configures the accumulation
    counters, the tail returns the final sums to the host.
    """

    instructions: list = field(default_factory=list)
    table_id: int = 0
    model_id: int = 0
    batch_index: int = 0
    packet_id: int = 0

    def __post_init__(self):
        tags = {inst.psum_tag for inst in self.instructions}
        if len(tags) > 16:
            raise ValueError(
                "a packet can carry at most 16 poolings (4-bit PsumTag)")

    def __len__(self):
        return len(self.instructions)

    def packed_arrays(self):
        """Cached :class:`PackedInstructions` of this packet.

        Packed once on first use (the dispatch path re-reads it per run);
        the cache is keyed on instruction count, so replacing the
        ``instructions`` list with one of equal length requires dropping
        ``_packed`` manually -- packets are treated as immutable after
        generation everywhere in the pipeline.
        """
        packed = getattr(self, "_packed", None)
        if packed is None or len(packed) != len(self.instructions):
            packed = PackedInstructions.from_instructions(self.instructions)
            self._packed = packed
        return packed

    @property
    def num_poolings(self):
        """Number of distinct poolings (PsumTags) in the packet."""
        return len({inst.psum_tag for inst in self.instructions})

    @property
    def total_vector_bytes(self):
        """Bytes of embedding data the packet gathers from memory."""
        return sum(inst.vector_bytes for inst in self.instructions)

    def instructions_by_psum(self):
        """Group instructions by PsumTag; returns ``{tag: [insts]}``."""
        groups = {}
        for inst in self.instructions:
            groups.setdefault(inst.psum_tag, []).append(inst)
        return groups

    def locality_fraction(self):
        """Fraction of instructions carrying a set LocalityBit."""
        if not self.instructions:
            return 0.0
        hot = sum(1 for inst in self.instructions if inst.locality_bit)
        return hot / len(self.instructions)
