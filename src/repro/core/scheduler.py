"""NMP packet scheduling (Section III-D, Fig. 11).

In production, the memory controller receives NMP packets from many parallel
SLS threads (different tables, different co-located models) with equal
priority.  Interleaving them destroys the intra-table temporal locality the
RankCache could otherwise exploit.  The *table-aware* scheduling policy
reorders the packet queue so that all packets of one (model, table, batch)
group issue back to back, preserving the reuse within a batch.
"""

from collections import OrderedDict


def fcfs_interleaved_order(packet_lists):
    """Baseline scheduling: round-robin interleave packets across sources.

    ``packet_lists`` is a list of per-source packet lists (one source per
    SLS thread / table).  The result mimics an FR-FCFS memory controller
    receiving concurrent packets from parallel threads with equal priority.
    """
    order = []
    positions = [0] * len(packet_lists)
    remaining = sum(len(packets) for packets in packet_lists)
    while remaining:
        for source, packets in enumerate(packet_lists):
            position = positions[source]
            if position < len(packets):
                order.append(packets[position])
                positions[source] += 1
                remaining -= 1
    return order


def table_aware_order(packet_lists):
    """Table-aware scheduling: issue all packets of one table/batch together.

    Packets are grouped by ``(model_id, table_id, batch_index)`` and groups
    are emitted in first-arrival order, which retains the intra-batch,
    intra-table temporal locality in the RankCache.
    """
    groups = OrderedDict()
    for packets in packet_lists:
        for packet in packets:
            key = (packet.model_id, packet.table_id, packet.batch_index)
            groups.setdefault(key, []).append(packet)
    order = []
    for group_packets in groups.values():
        order.extend(group_packets)
    return order


class PacketScheduler:
    """Queue of NMP packets with selectable scheduling policy.

    Parameters
    ----------
    policy:
        ``"fcfs"`` (baseline interleaving) or ``"table-aware"``.
    """

    POLICIES = ("fcfs", "table-aware")

    def __init__(self, policy="table-aware"):
        if policy not in self.POLICIES:
            raise ValueError("unknown scheduling policy %r; expected one of %s"
                             % (policy, self.POLICIES))
        self.policy = policy
        self._sources = []

    def add_source(self, packets):
        """Register the packet list of one SLS thread / operator."""
        self._sources.append(list(packets))

    def clear(self):
        """Drop all registered sources."""
        self._sources = []

    @property
    def num_sources(self):
        return len(self._sources)

    @property
    def num_packets(self):
        return sum(len(source) for source in self._sources)

    def schedule(self):
        """Return the packets in issue order according to the policy."""
        if not self._sources:
            return []
        if self.policy == "fcfs":
            return fcfs_interleaved_order(self._sources)
        return table_aware_order(self._sources)

    # ------------------------------------------------------------------ #
    @staticmethod
    def locality_span(order):
        """Average distance between consecutive packets of the same table.

        A diagnostic for how well a schedule keeps same-table packets
        together (smaller is better; table-aware ordering gives ~1).
        """
        last_position = {}
        spans = []
        for position, packet in enumerate(order):
            key = (packet.model_id, packet.table_id)
            if key in last_position:
                spans.append(position - last_position[key])
            last_position[key] = position
        if not spans:
            return 0.0
        return sum(spans) / len(spans)
