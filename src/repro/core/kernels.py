"""Compiled kernels for the rank-NMP command-issue hot loop.

The DDR command-issue inner loop (windowed FR-FCFS selection plus the
bank/rank state machine of :meth:`RankNMP._dram_read`) dominates exact
simulation time.  This module holds that loop in two interchangeable,
bit-identical implementations operating on flat ``int64`` state instead
of ``Bank`` / ``Rank`` / ``RankCache`` objects:

* :func:`_execute_window_flat` -- the canonical *struct-of-arrays*
  kernel, written in the numba-compilable subset of Python (numpy
  scalars, plain loops, an ``int64 -> int64`` dict for cache residency).
  When :mod:`numba` is importable it is ``@njit``-compiled and selected
  as the ``"numba"`` flavor; the un-jitted source remains importable
  everywhere so its semantics are pinned by tests even on hosts without
  numba.
* :func:`_execute_window_python` -- a hand-tuned CPython twin using
  plain lists and the :class:`RankCache`'s own ``OrderedDict`` (C-speed
  LRU ops).  Selected as the ``"python"`` fallback flavor when numba is
  unavailable.

Flavor selection happens once at import: ``REPRO_DISABLE_KERNELS=1``
disables both (``RankNMP`` then runs its original object-based path,
which is kept as the readable specification); otherwise numba is tried
and the pure-python kernel is the fallback.  Tests can override the
selection with :func:`force_flavor`.

State layout conventions
------------------------
Bank state is seven parallel arrays indexed by flat bank id
(``bank_group * banks_per_group + bank_index``): ``open_row`` (-1 when
closed / precharged), ``next_act`` / ``next_read`` / ``next_pre`` ready
cycles, and the ``activations`` / ``reads`` / ``precharges`` counters.
Rank-level scalars live in an ``RS_SIZE``-slot vector (`RS_*` indices):
a four-slot ring buffer of recent ACT cycles (for tFAW -- slot
``act_count % 4`` holds ``history[-4]`` once four ACTs happened), the
last-ACT / last-column cycle and bank group (-1 for "never"), the
data-bus free cycle and the rank-NMP ``current_cycle``.  Timing
parameters arrive as a ``TP_SIZE`` vector (`TP_*` indices, see
:meth:`DDR4Timing.kernel_params`) and statistics deltas leave through an
``ST_SIZE`` vector (`ST_*` indices).

Both kernels mutate those vectors in place and return the last
completion cycle; the wrapper classes below sync them with the
authoritative ``Bank`` / ``Rank`` / ``RankCache`` objects around every
call, so the object layer stays the source of truth between calls and
the legacy path (or direct object inspection in tests) always sees
consistent state.
"""

import os
from collections import OrderedDict

import numpy as np

__all__ = [
    "KERNEL_FLAVOR",
    "active_flavor",
    "force_flavor",
    "make_rank_kernel",
    "pack_decoded",
]

# --------------------------------------------------------------------- #
# Flat-state layout indices                                             #
# --------------------------------------------------------------------- #
#: Rank scalar state (int64): ACT ring buffer + rank-level last/next state.
RS_RING0 = 0
RS_RING1 = 1
RS_RING2 = 2
RS_RING3 = 3
RS_ACT_COUNT = 4
RS_LAST_ACT = 5
RS_LAST_ACT_BG = 6
RS_LAST_COL = 7
RS_LAST_COL_BG = 8
RS_BUS_FREE = 9
RS_CURRENT = 10
RS_SIZE = 11

#: Timing parameter order (matches DDR4Timing.kernel_params()).
(TP_TRP, TP_TRCD, TP_TCL, TP_TBL, TP_TCCD_S, TP_TCCD_L, TP_TRRD_S,
 TP_TRRD_L, TP_TFAW, TP_TRAS, TP_TRC, TP_TRTP) = range(12)
TP_SIZE = 12

#: Statistics deltas produced by one kernel call.
(ST_INSTRUCTIONS, ST_HITS, ST_MISSES, ST_BYPASSES, ST_DRAM_READS,
 ST_ACTIVATIONS, ST_BUSY, ST_BYTES_DRAM, ST_BYTES_CACHE,
 ST_EVICTIONS) = range(10)
ST_SIZE = 10

#: LRU list state of the flat cache (head = LRU victim, tail = MRU).
CS_HEAD, CS_TAIL, CS_USED = range(3)
CS_SIZE = 3

#: A part-memo value below any reachable cycle (parts can be negative:
#: ``next_data_bus_free - tCL`` starts at ``-tCL``).
_PART_UNSET = -(1 << 62)


# --------------------------------------------------------------------- #
# Flavor selection                                                      #
# --------------------------------------------------------------------- #
_DISABLED_BY_ENV = os.environ.get("REPRO_DISABLE_KERNELS", "") \
    not in ("", "0")

try:
    if _DISABLED_BY_ENV:
        raise ImportError("kernels disabled via REPRO_DISABLE_KERNELS")
    from numba import njit as _njit
    from numba import typed as _numba_typed
    from numba.core import types as _numba_types
    KERNEL_FLAVOR = "numba"
except ImportError:
    _njit = None
    _numba_typed = None
    _numba_types = None
    KERNEL_FLAVOR = "disabled" if _DISABLED_BY_ENV else "python"

#: Test hook: force_flavor() overrides the import-time selection.
_FORCED_FLAVOR = None

#: Flavors force_flavor accepts.  "flat-python" runs the canonical
#: struct-of-arrays kernel *un-jitted* -- slow, but it lets the numba
#: source semantics be pinned by tests on hosts without numba.
_KNOWN_FLAVORS = ("numba", "python", "flat-python", "disabled")


def active_flavor():
    """The kernel flavor new :class:`RankNMP` instances will bind to."""
    if _FORCED_FLAVOR is not None:
        return _FORCED_FLAVOR
    return KERNEL_FLAVOR


def kernels_enabled():
    """True when new RankNMP instances use a kernel (any flavor)."""
    return active_flavor() != "disabled"


def maybe_jit(fn):
    """Jit ``fn`` when the import-time flavor is numba, else return it.

    The hook other kernel modules (:mod:`repro.serving.event_kernels`)
    use to apply this module's flavor selection to their own flat
    kernels: one numba probe, one ``REPRO_DISABLE_KERNELS`` switch, one
    ``force_flavor`` override governing every compiled kernel in the
    tree.
    """
    if KERNEL_FLAVOR == "numba":
        return _njit(cache=True)(fn)
    return fn


#: Packet sizes below which the legacy object path beats the packed
#: kernel path: the numpy packing and kernel-call fixed costs only
#: amortise on large packets.  The jitted flavour recoups its call
#: overhead almost immediately; the interpreted flavours need packets
#: of a few hundred instructions (measured crossover on CPython 3.11).
_PACKED_MIN_INSTRUCTIONS = {"numba": 24, "python": 256,
                            "flat-python": 256}


def packed_dispatch_min_instructions(flavor=None):
    """Smallest instruction stream worth routing through a kernel.

    The memory controller and :class:`~repro.core.rank_nmp.RankNMP`
    fall back to the (bit-identical) legacy object path for streams
    below this size; 0 means always use the kernel.  Inside a
    :class:`force_flavor` context the cutover is 0: forcing a flavor
    means exercising that flavor unconditionally (the parity tests
    depend on it).
    """
    if flavor is None:
        if _FORCED_FLAVOR is not None:
            return 0
        flavor = KERNEL_FLAVOR
    return _PACKED_MIN_INSTRUCTIONS.get(flavor, 0)


class force_flavor:
    """Context manager overriding the kernel flavor (for tests).

    Only affects :class:`RankNMP` objects *constructed inside* the
    context: the kernel binding happens at construction time.
    ``force_flavor("numba")`` raises on hosts without numba.

    Exception-safe: the previous flavor is restored even when the body
    raises, one instance may be entered reentrantly (each exit pops one
    level), and ``__exit__`` without a matching ``__enter__`` is a
    no-op rather than clobbering an enclosing context's override.
    """

    def __init__(self, flavor):
        if flavor not in _KNOWN_FLAVORS:
            raise ValueError("unknown kernel flavor %r; known: %s"
                             % (flavor, ", ".join(_KNOWN_FLAVORS)))
        if flavor == "numba" and _njit is None:
            raise RuntimeError("numba is not importable on this host")
        self.flavor = flavor
        self._previous = []         # one entry per active __enter__

    def __enter__(self):
        global _FORCED_FLAVOR
        self._previous.append(_FORCED_FLAVOR)
        _FORCED_FLAVOR = self.flavor
        return self

    def __exit__(self, exc_type, exc, tb):
        global _FORCED_FLAVOR
        if self._previous:
            _FORCED_FLAVOR = self._previous.pop()
        return False


# --------------------------------------------------------------------- #
# Canonical struct-of-arrays kernel (numba-compilable subset)           #
# --------------------------------------------------------------------- #
def _execute_window_flat(daddrs, vsizes, computes, vbytes, localities,
                         arrivals, flats, bank_groups, rows,
                         window_size, num_bank_groups,
                         b_open, b_next_act, b_next_read, b_next_pre,
                         b_activations, b_reads, b_precharges,
                         rs, tp, st,
                         use_cache, cache_slot, lru_prev, lru_next,
                         lru_key, cs, cache_capacity, cache_latency,
                         exec_order):
    """Windowed FR-FCFS execution over flat int64 state.

    Mirrors ``RankNMP.execute_instructions`` (selection + memoised
    rank-part estimates) fused with ``execute_instruction`` (cache
    lookup, datapath latency, busy accounting) and ``_dram_read`` (the
    bank/rank DDR state machine) -- one loop, no attribute access.
    ``exec_order`` receives the execution permutation so the caller can
    replay LRU effects onto the mirroring ``OrderedDict``.
    """
    count = len(daddrs)
    tRP = tp[TP_TRP]
    tRCD = tp[TP_TRCD]
    tCL = tp[TP_TCL]
    tBL = tp[TP_TBL]
    tCCD_S = tp[TP_TCCD_S]
    tCCD_L = tp[TP_TCCD_L]
    tRRD_S = tp[TP_TRRD_S]
    tRRD_L = tp[TP_TRRD_L]
    tFAW = tp[TP_TFAW]
    tRAS = tp[TP_TRAS]
    tRC = tp[TP_TRC]
    tRTP = tp[TP_TRTP]
    act_count = rs[RS_ACT_COUNT]
    last_act = rs[RS_LAST_ACT]
    last_act_bg = rs[RS_LAST_ACT_BG]
    last_col = rs[RS_LAST_COL]
    last_col_bg = rs[RS_LAST_COL_BG]
    bus_free = rs[RS_BUS_FREE]
    current = rs[RS_CURRENT]
    head = cs[CS_HEAD]
    tail = cs[CS_TAIL]
    used = cs[CS_USED]
    st_instructions = 0
    st_hits = 0
    st_misses = 0
    st_bypasses = 0
    st_dram_reads = 0
    st_activations = 0
    st_busy = 0
    st_bytes_dram = 0
    st_bytes_cache = 0
    st_evictions = 0
    last_completion = current
    window = np.empty(window_size, np.int64)
    win_len = window_size if window_size < count else count
    for i in range(win_len):
        window[i] = i
    next_index = win_len
    # Rank-level earliest-issue components, memoised per bank group and
    # invalidated only when an executed instruction touched DRAM.
    act_part = np.empty(num_bank_groups, np.int64)
    rd_part = np.empty(num_bank_groups, np.int64)
    for g in range(num_bank_groups):
        act_part[g] = _PART_UNSET
        rd_part[g] = _PART_UNSET
    executed = 0
    while win_len > 0:
        best_pos = 0
        best_estimate = 0
        have_best = False
        for pos in range(win_len):
            index = window[pos]
            arrival = arrivals[index]
            start = arrival if arrival > current else current
            if have_best and start >= best_estimate:
                # estimate >= start, so this member cannot win (ties
                # keep the earliest window position).
                continue
            if use_cache != 0 and localities[index] != 0 and \
                    daddrs[index] in cache_slot:
                estimate = start
            else:
                flat = flats[index]
                open_row = b_open[flat]
                bg = bank_groups[index]
                if open_row == rows[index]:
                    ready = b_next_read[flat]
                    part = rd_part[bg]
                    if part == _PART_UNSET:
                        part = bus_free - tCL
                        if last_col >= 0:
                            if bg == last_col_bg:
                                ccd = last_col + tCCD_L
                            else:
                                ccd = last_col + tCCD_S
                            if ccd > part:
                                part = ccd
                        rd_part[bg] = part
                    if part > ready:
                        ready = part
                elif open_row == -1:
                    ready = b_next_act[flat]
                    part = act_part[bg]
                    if part == _PART_UNSET:
                        part = 0
                        if act_count >= 4:
                            faw = rs[act_count % 4] + tFAW
                            if faw > part:
                                part = faw
                        if last_act >= 0:
                            if bg == last_act_bg:
                                rrd = last_act + tRRD_L
                            else:
                                rrd = last_act + tRRD_S
                            if rrd > part:
                                part = rrd
                        act_part[bg] = part
                    if part > ready:
                        ready = part
                else:
                    ready = b_next_pre[flat]
                estimate = start if start > ready else ready
            if not have_best or estimate < best_estimate:
                best_estimate = estimate
                best_pos = pos
                have_best = True
                if best_estimate <= current:
                    # No member can estimate below `current` (estimate >=
                    # start >= current) and ties keep the earliest
                    # position, so this member has already won.
                    break
        index = window[best_pos]
        for pos in range(best_pos, win_len - 1):
            window[pos] = window[pos + 1]
        if next_index < count:
            window[win_len - 1] = next_index
            next_index += 1
        else:
            win_len -= 1
        exec_order[executed] = index
        executed += 1
        daddr = daddrs[index]
        resident = use_cache != 0 and daddr in cache_slot
        # ---- execute (cache lookup + datapath + DDR state machine) ---- #
        arrival = arrivals[index]
        start = arrival if arrival > current else current
        st_instructions += 1
        hit = False
        if use_cache != 0:
            if resident:
                # LRU touch: move the slot to the tail (MRU) position.
                slot = cache_slot[daddr]
                if slot != tail:
                    prev_slot = lru_prev[slot]
                    next_slot_ = lru_next[slot]
                    if prev_slot >= 0:
                        lru_next[prev_slot] = next_slot_
                    else:
                        head = next_slot_
                    lru_prev[next_slot_] = prev_slot
                    lru_prev[slot] = tail
                    lru_next[slot] = -1
                    lru_next[tail] = slot
                    tail = slot
                hit = True
            elif localities[index] != 0:
                st_misses += 1
                if used >= cache_capacity:
                    victim = head
                    del cache_slot[lru_key[victim]]
                    head = lru_next[victim]
                    if head >= 0:
                        lru_prev[head] = -1
                    else:
                        tail = -1
                    st_evictions += 1
                    slot = victim
                else:
                    slot = used
                    used += 1
                lru_key[slot] = daddr
                cache_slot[daddr] = slot
                lru_prev[slot] = tail
                lru_next[slot] = -1
                if tail >= 0:
                    lru_next[tail] = slot
                else:
                    head = slot
                tail = slot
            else:
                st_bypasses += 1
        if hit:
            st_hits += 1
            st_bytes_cache += vbytes[index]
            data_ready = start + cache_latency
            next_free = data_ready
        else:
            # ---- _dram_read, inlined over flat bank state ---- #
            cycle = start
            commands_issued = 0
            first_issue = -1
            row = rows[index]
            flat = flats[index]
            bg = bank_groups[index]
            open_row = b_open[flat]
            if open_row != row:
                if open_row != -1:
                    ready = b_next_pre[flat]
                    if ready > cycle:
                        cycle = ready
                    b_open[flat] = -1
                    b_precharges[flat] += 1
                    value = cycle + tRP
                    if value > b_next_act[flat]:
                        b_next_act[flat] = value
                    commands_issued = 1
                    first_issue = cycle
                ready = b_next_act[flat]
                if act_count >= 4:
                    faw = rs[act_count % 4] + tFAW
                    if faw > ready:
                        ready = faw
                if last_act >= 0:
                    if bg == last_act_bg:
                        rrd = last_act + tRRD_L
                    else:
                        rrd = last_act + tRRD_S
                    if rrd > ready:
                        ready = rrd
                if ready > cycle:
                    cycle = ready
                b_open[flat] = row
                b_activations[flat] += 1
                value = cycle + tRCD
                if value > b_next_read[flat]:
                    b_next_read[flat] = value
                value = cycle + tRAS
                if value > b_next_pre[flat]:
                    b_next_pre[flat] = value
                value = cycle + tRC
                if value > b_next_act[flat]:
                    b_next_act[flat] = value
                rs[act_count % 4] = cycle
                act_count += 1
                last_act = cycle
                last_act_bg = bg
                commands_issued += 1
                if first_issue == -1:
                    first_issue = cycle
                st_activations += 1
            finish = cycle
            bursts = vsizes[index]
            if bursts < 1:
                bursts = 1
            for _ in range(bursts):
                ready = b_next_read[flat]
                if last_col >= 0:
                    if bg == last_col_bg:
                        ccd = last_col + tCCD_L
                    else:
                        ccd = last_col + tCCD_S
                    if ccd > ready:
                        ready = ccd
                bus = bus_free - tCL
                if bus > ready:
                    ready = bus
                if ready > cycle:
                    cycle = ready
                b_reads[flat] += 1
                finish = cycle + tCL + tBL
                value = cycle + tCCD_L
                if value > b_next_read[flat]:
                    b_next_read[flat] = value
                value = cycle + tRTP
                if value > b_next_pre[flat]:
                    b_next_pre[flat] = value
                last_col = cycle
                last_col_bg = bg
                if finish > bus_free:
                    bus_free = finish
                commands_issued += 1
                if first_issue == -1:
                    first_issue = cycle
                st_dram_reads += 1
            st_bytes_dram += vbytes[index]
            data_ready = finish
            next_free = (start if start > first_issue else first_issue) \
                + commands_issued
        completion = data_ready + computes[index]
        if next_free > start:
            st_busy += next_free - start
        current = next_free
        if completion > last_completion:
            last_completion = completion
        if not resident:
            for g in range(num_bank_groups):
                act_part[g] = _PART_UNSET
                rd_part[g] = _PART_UNSET
    rs[RS_ACT_COUNT] = act_count
    rs[RS_LAST_ACT] = last_act
    rs[RS_LAST_ACT_BG] = last_act_bg
    rs[RS_LAST_COL] = last_col
    rs[RS_LAST_COL_BG] = last_col_bg
    rs[RS_BUS_FREE] = bus_free
    rs[RS_CURRENT] = current
    cs[CS_HEAD] = head
    cs[CS_TAIL] = tail
    cs[CS_USED] = used
    st[ST_INSTRUCTIONS] += st_instructions
    st[ST_HITS] += st_hits
    st[ST_MISSES] += st_misses
    st[ST_BYPASSES] += st_bypasses
    st[ST_DRAM_READS] += st_dram_reads
    st[ST_ACTIVATIONS] += st_activations
    st[ST_BUSY] += st_busy
    st[ST_BYTES_DRAM] += st_bytes_dram
    st[ST_BYTES_CACHE] += st_bytes_cache
    st[ST_EVICTIONS] += st_evictions
    return last_completion


def _reorder_window_flat(rows, ranks, window_size, num_ranks):
    """FR-FCFS permutation of ``NMPMemoryController._reorder_indices``
    over flat int64 arrays (numba-compilable): within the sliding window
    the first member whose row matches the last row issued to its rank
    is hoisted; otherwise the oldest member goes."""
    count = len(rows)
    order = np.empty(count, np.int64)
    win_len = window_size if window_size < count else count
    window = np.empty(win_len, np.int64)
    for i in range(win_len):
        window[i] = i
    next_index = win_len
    last = np.full(num_ranks, -1, np.int64)
    issued = 0
    while win_len > 0:
        chosen_pos = 0
        for pos in range(win_len):
            index = window[pos]
            if last[ranks[index]] == rows[index]:
                chosen_pos = pos
                break
        index = window[chosen_pos]
        for pos in range(chosen_pos, win_len - 1):
            window[pos] = window[pos + 1]
        if next_index < count:
            window[win_len - 1] = next_index
            next_index += 1
        else:
            win_len -= 1
        last[ranks[index]] = rows[index]
        order[issued] = index
        issued += 1
    return order


def _rebuild_lru_flat(keys, cache_slot, lru_prev, lru_next, lru_key, cs):
    """Re-populate the flat LRU from ``keys`` in LRU -> MRU order."""
    head = -1
    tail = -1
    for slot in range(len(keys)):
        key = keys[slot]
        lru_key[slot] = key
        cache_slot[key] = slot
        lru_prev[slot] = tail
        lru_next[slot] = -1
        if tail >= 0:
            lru_next[tail] = slot
        else:
            head = slot
        tail = slot
    cs[CS_HEAD] = head
    cs[CS_TAIL] = tail
    cs[CS_USED] = len(keys)


#: Un-jitted references: importable on every host, pinned by parity
#: tests so the compiled flavor can never silently diverge.
_execute_window_flat_py = _execute_window_flat
_rebuild_lru_flat_py = _rebuild_lru_flat
_reorder_window_flat_py = _reorder_window_flat

if KERNEL_FLAVOR == "numba":
    _execute_window_flat = _njit(cache=True)(_execute_window_flat)
    _rebuild_lru_flat = _njit(cache=True)(_rebuild_lru_flat)
    _reorder_window_flat = _njit(cache=True)(_reorder_window_flat)


def _reorder_window_python(rows, ranks, window_size, num_ranks):
    """CPython twin of :func:`_reorder_window_flat` over plain lists."""
    count = len(rows)
    window = list(range(window_size if window_size < count else count))
    next_index = len(window)
    last = [-1] * num_ranks
    order = []
    append = order.append
    while window:
        chosen_pos = 0
        for pos, index in enumerate(window):
            if last[ranks[index]] == rows[index]:
                chosen_pos = pos
                break
        index = window.pop(chosen_pos)
        if next_index < count:
            window.append(next_index)
            next_index += 1
        last[ranks[index]] = rows[index]
        append(index)
    return order


def reorder_indices(rows, ranks, window_size, num_ranks):
    """FR-FCFS permutation over int64 arrays using the active flavor.

    ``rows``/``ranks`` are aligned numpy int64 arrays; every rank must be
    in ``[0, num_ranks)`` (callers validate).  Returns an int64 index
    array.  Bit-identical to the dict-based loop in
    ``NMPMemoryController._reorder_indices`` (``-1`` can never match a
    real row, exactly like the empty-dict initial state).
    """
    count = len(rows)
    if count <= 2:
        return np.arange(count, dtype=np.int64)
    flavor = active_flavor()
    if flavor == "numba":
        return _reorder_window_flat(rows, ranks,
                                    window_size if window_size > 1 else 1,
                                    num_ranks)
    if flavor == "flat-python":
        return _reorder_window_flat_py(rows, ranks,
                                       window_size if window_size > 1 else 1,
                                       num_ranks)
    return np.asarray(
        _reorder_window_python(rows.tolist(), ranks.tolist(),
                               window_size if window_size > 1 else 1,
                               num_ranks),
        dtype=np.int64)


# --------------------------------------------------------------------- #
# Hand-tuned CPython fallback                                           #
# --------------------------------------------------------------------- #
def _execute_window_python(daddrs, vsizes, computes, vbytes, localities,
                           arrivals, flats, bank_groups, rows,
                           window_size,
                           b_open, b_next_act, b_next_read, b_next_pre,
                           b_activations, b_reads, b_precharges,
                           rs, tp, st, entries, cache_capacity,
                           cache_latency):
    """CPython twin of :func:`_execute_window_flat` over plain lists.

    Identical algorithm, tuned for the interpreter: list state (faster
    element access than numpy scalars under CPython), dict part-memos,
    and the RankCache's own ``OrderedDict`` as the LRU (its
    ``move_to_end`` / ``popitem`` are C operations), so cache contents
    stay authoritative in the object layer with zero syncing.
    """
    count = len(daddrs)
    tRP = tp[TP_TRP]
    tRCD = tp[TP_TRCD]
    tCL = tp[TP_TCL]
    tBL = tp[TP_TBL]
    tCCD_S = tp[TP_TCCD_S]
    tCCD_L = tp[TP_TCCD_L]
    tRRD_S = tp[TP_TRRD_S]
    tRRD_L = tp[TP_TRRD_L]
    tFAW = tp[TP_TFAW]
    tRAS = tp[TP_TRAS]
    tRC = tp[TP_TRC]
    tRTP = tp[TP_TRTP]
    act_count = rs[RS_ACT_COUNT]
    last_act = rs[RS_LAST_ACT]
    last_act_bg = rs[RS_LAST_ACT_BG]
    last_col = rs[RS_LAST_COL]
    last_col_bg = rs[RS_LAST_COL_BG]
    bus_free = rs[RS_BUS_FREE]
    current = rs[RS_CURRENT]
    use_cache = entries is not None
    st_instructions = 0
    st_hits = 0
    st_misses = 0
    st_bypasses = 0
    st_dram_reads = 0
    st_activations = 0
    st_busy = 0
    st_bytes_dram = 0
    st_bytes_cache = 0
    st_evictions = 0
    last_completion = current
    window = list(range(window_size if window_size < count else count))
    next_index = len(window)
    act_part = {}
    rd_part = {}
    while window:
        best_pos = 0
        best_estimate = None
        for pos, index in enumerate(window):
            arrival = arrivals[index]
            start = arrival if arrival > current else current
            if best_estimate is not None and start >= best_estimate:
                continue
            if use_cache and localities[index] and daddrs[index] in entries:
                estimate = start
            else:
                flat = flats[index]
                open_row = b_open[flat]
                bg = bank_groups[index]
                if open_row == rows[index]:
                    ready = b_next_read[flat]
                    part = rd_part.get(bg)
                    if part is None:
                        part = bus_free - tCL
                        if last_col >= 0:
                            ccd = last_col + (tCCD_L if bg == last_col_bg
                                              else tCCD_S)
                            if ccd > part:
                                part = ccd
                        rd_part[bg] = part
                    if part > ready:
                        ready = part
                elif open_row == -1:
                    ready = b_next_act[flat]
                    part = act_part.get(bg)
                    if part is None:
                        part = 0
                        if act_count >= 4:
                            faw = rs[act_count % 4] + tFAW
                            if faw > part:
                                part = faw
                        if last_act >= 0:
                            rrd = last_act + (tRRD_L if bg == last_act_bg
                                              else tRRD_S)
                            if rrd > part:
                                part = rrd
                        act_part[bg] = part
                    if part > ready:
                        ready = part
                else:
                    ready = b_next_pre[flat]
                estimate = start if start > ready else ready
            if best_estimate is None or estimate < best_estimate:
                best_estimate = estimate
                best_pos = pos
                if estimate <= current:
                    # estimate >= start >= current for every member and
                    # ties keep the earliest position: already won.
                    break
        index = window.pop(best_pos)
        if next_index < count:
            window.append(next_index)
            next_index += 1
        daddr = daddrs[index]
        resident = use_cache and daddr in entries
        arrival = arrivals[index]
        start = arrival if arrival > current else current
        st_instructions += 1
        hit = False
        if use_cache:
            if resident:
                entries.move_to_end(daddr)
                hit = True
            elif localities[index]:
                st_misses += 1
                if len(entries) >= cache_capacity:
                    entries.popitem(last=False)
                    st_evictions += 1
                entries[daddr] = None
            else:
                st_bypasses += 1
        if hit:
            st_hits += 1
            st_bytes_cache += vbytes[index]
            data_ready = start + cache_latency
            next_free = data_ready
        else:
            cycle = start
            commands_issued = 0
            first_issue = -1
            row = rows[index]
            flat = flats[index]
            bg = bank_groups[index]
            open_row = b_open[flat]
            if open_row != row:
                if open_row != -1:
                    ready = b_next_pre[flat]
                    if ready > cycle:
                        cycle = ready
                    b_open[flat] = -1
                    b_precharges[flat] += 1
                    value = cycle + tRP
                    if value > b_next_act[flat]:
                        b_next_act[flat] = value
                    commands_issued = 1
                    first_issue = cycle
                ready = b_next_act[flat]
                if act_count >= 4:
                    faw = rs[act_count % 4] + tFAW
                    if faw > ready:
                        ready = faw
                if last_act >= 0:
                    rrd = last_act + (tRRD_L if bg == last_act_bg
                                      else tRRD_S)
                    if rrd > ready:
                        ready = rrd
                if ready > cycle:
                    cycle = ready
                b_open[flat] = row
                b_activations[flat] += 1
                value = cycle + tRCD
                if value > b_next_read[flat]:
                    b_next_read[flat] = value
                value = cycle + tRAS
                if value > b_next_pre[flat]:
                    b_next_pre[flat] = value
                value = cycle + tRC
                if value > b_next_act[flat]:
                    b_next_act[flat] = value
                rs[act_count % 4] = cycle
                act_count += 1
                last_act = cycle
                last_act_bg = bg
                commands_issued += 1
                if first_issue == -1:
                    first_issue = cycle
                st_activations += 1
            finish = cycle
            bursts = vsizes[index]
            if bursts < 1:
                bursts = 1
            for _ in range(bursts):
                ready = b_next_read[flat]
                if last_col >= 0:
                    ccd = last_col + (tCCD_L if bg == last_col_bg
                                      else tCCD_S)
                    if ccd > ready:
                        ready = ccd
                bus = bus_free - tCL
                if bus > ready:
                    ready = bus
                if ready > cycle:
                    cycle = ready
                b_reads[flat] += 1
                finish = cycle + tCL + tBL
                value = cycle + tCCD_L
                if value > b_next_read[flat]:
                    b_next_read[flat] = value
                value = cycle + tRTP
                if value > b_next_pre[flat]:
                    b_next_pre[flat] = value
                last_col = cycle
                last_col_bg = bg
                if finish > bus_free:
                    bus_free = finish
                commands_issued += 1
                if first_issue == -1:
                    first_issue = cycle
                st_dram_reads += 1
            st_bytes_dram += vbytes[index]
            data_ready = finish
            next_free = (start if start > first_issue else first_issue) \
                + commands_issued
        completion = data_ready + computes[index]
        if next_free > start:
            st_busy += next_free - start
        current = next_free
        if completion > last_completion:
            last_completion = completion
        if not resident:
            act_part.clear()
            rd_part.clear()
    rs[RS_ACT_COUNT] = act_count
    rs[RS_LAST_ACT] = last_act
    rs[RS_LAST_ACT_BG] = last_act_bg
    rs[RS_LAST_COL] = last_col
    rs[RS_LAST_COL_BG] = last_col_bg
    rs[RS_BUS_FREE] = bus_free
    rs[RS_CURRENT] = current
    st[ST_INSTRUCTIONS] += st_instructions
    st[ST_HITS] += st_hits
    st[ST_MISSES] += st_misses
    st[ST_BYPASSES] += st_bypasses
    st[ST_DRAM_READS] += st_dram_reads
    st[ST_ACTIVATIONS] += st_activations
    st[ST_BUSY] += st_busy
    st[ST_BYTES_DRAM] += st_bytes_dram
    st[ST_BYTES_CACHE] += st_bytes_cache
    st[ST_EVICTIONS] += st_evictions
    return last_completion


# --------------------------------------------------------------------- #
# Packing helpers                                                       #
# --------------------------------------------------------------------- #
def pack_decoded(config, daddrs):
    """Vectorised ``(bank_groups, banks, rows)`` decode of a Daddr array."""
    blocks = daddrs // config.columns_per_row
    bank_groups = blocks % config.num_bank_groups
    blocks = blocks // config.num_bank_groups
    banks = blocks % config.banks_per_group
    rows = blocks // config.banks_per_group
    return bank_groups, banks, rows


# --------------------------------------------------------------------- #
# Wrapper classes: sync object state around each kernel call            #
# --------------------------------------------------------------------- #
class _RankKernelBase:
    """Shared packing / sync glue between a RankNMP and a kernel."""

    def __init__(self, rank_nmp):
        self.rank_nmp = rank_nmp
        config = rank_nmp.config
        self.adder = config.adder_latency_cycles
        self.multiplier = config.multiplier_latency_cycles
        self.cache_latency = config.cache_latency_cycles
        self.banks_per_group = config.banks_per_group
        self.num_bank_groups = config.num_bank_groups
        self.capacity = (rank_nmp.cache.num_entries
                         if rank_nmp.cache is not None else 0)
        self.timing_params = config.timing.kernel_params()

    # ---- entry points ------------------------------------------------ #
    def execute_objects(self, instructions, arrival_cycles, reorder_window,
                        decoded=None):
        """Kernel execution from a list of NMPInstruction objects."""
        count = len(instructions)
        if count == 0:
            return self.rank_nmp.current_cycle
        daddrs = np.fromiter((inst.daddr for inst in instructions),
                             np.int64, count)
        vsizes = np.fromiter((inst.vsize for inst in instructions),
                             np.int64, count)
        weighted = np.fromiter((inst.weight != 1.0 for inst in instructions),
                               np.bool_, count)
        localities = np.fromiter(
            (inst.locality_bit for inst in instructions), np.bool_, count)
        psum_tags = np.fromiter((inst.psum_tag for inst in instructions),
                                np.int64, count)
        if decoded is None:
            bank_groups, banks, rows = pack_decoded(
                self.rank_nmp.config, daddrs)
        else:
            bank_groups = np.asarray(decoded[0], dtype=np.int64)
            banks = np.asarray(decoded[1], dtype=np.int64)
            rows = np.asarray(decoded[2], dtype=np.int64)
        arrivals = np.asarray(arrival_cycles, dtype=np.int64)
        return self.execute_arrays(daddrs, vsizes, weighted, localities,
                                   psum_tags, arrivals, bank_groups, banks,
                                   rows, reorder_window)

    def execute_arrays(self, daddrs, vsizes, weighted, localities,
                       psum_tags, arrivals, bank_groups, banks, rows,
                       reorder_window):
        raise NotImplementedError

    # ---- shared sync helpers ----------------------------------------- #
    def _rank_scalars(self):
        """RS vector (list) from the live Rank object + current_cycle."""
        rank_nmp = self.rank_nmp
        rs = rank_nmp.dram_rank.kernel_scalars()
        rs.append(rank_nmp.current_cycle)
        return rs

    def _write_rank_scalars(self, rs):
        rank_nmp = self.rank_nmp
        rank_nmp.dram_rank.set_kernel_scalars(rs)
        rank_nmp.current_cycle = int(rs[RS_CURRENT])

    def _apply_stats(self, st, psum_tags):
        rank_nmp = self.rank_nmp
        stats = rank_nmp.stats
        stats.instructions += int(st[ST_INSTRUCTIONS])
        stats.cache_hits += int(st[ST_HITS])
        stats.cache_misses += int(st[ST_MISSES])
        stats.cache_bypasses += int(st[ST_BYPASSES])
        stats.dram_reads += int(st[ST_DRAM_READS])
        stats.activations += int(st[ST_ACTIVATIONS])
        stats.busy_cycles += int(st[ST_BUSY])
        stats.bytes_from_dram += int(st[ST_BYTES_DRAM])
        stats.bytes_from_cache += int(st[ST_BYTES_CACHE])
        cache = rank_nmp.cache
        if cache is not None:
            cache_stats = cache.stats
            cache_stats.hits += int(st[ST_HITS])
            cache_stats.misses += int(st[ST_MISSES])
            cache_stats.bypasses += int(st[ST_BYPASSES])
            cache_stats.evictions += int(st[ST_EVICTIONS])
        psums = rank_nmp._psum_counts
        if isinstance(psum_tags, np.ndarray):
            tags, counts = np.unique(psum_tags, return_counts=True)
            for tag, tag_count in zip(tags.tolist(), counts.tolist()):
                psums[tag] = psums.get(tag, 0) + tag_count
        else:
            for tag in psum_tags:
                psums[tag] = psums.get(tag, 0) + 1

    def reset(self):
        """Drop kernel-side state (after RankNMP.reset / cache flush)."""


class PythonRankKernel(_RankKernelBase):
    """Pure-python kernel: list state + the cache's own OrderedDict."""

    flavor = "python"

    def execute_objects(self, instructions, arrival_cycles, reorder_window,
                        decoded=None):
        """List-native packing from NMPInstruction objects (no numpy
        round trip -- plain-int state is what the CPython loop wants)."""
        count = len(instructions)
        if count == 0:
            return self.rank_nmp.current_cycle
        adder = self.adder
        with_mult = adder + self.multiplier
        daddr_list = [inst.daddr for inst in instructions]
        vsize_list = [inst.vsize for inst in instructions]
        computes = [with_mult if inst.weight != 1.0 else adder
                    for inst in instructions]
        vbytes = [vsize * 64 for vsize in vsize_list]
        locality_list = [inst.locality_bit for inst in instructions]
        psum_list = [inst.psum_tag for inst in instructions]
        if decoded is None:
            bg_list, bank_list, row_list = \
                self.rank_nmp.decode_bank_rows(daddr_list)
        else:
            bg_list, bank_list, row_list = \
                list(decoded[0]), list(decoded[1]), list(decoded[2])
        banks_per_group = self.banks_per_group
        flats = [bg_list[i] * banks_per_group + bank_list[i]
                 for i in range(count)]
        return self._run(daddr_list, vsize_list, computes, vbytes,
                         locality_list, psum_list, list(arrival_cycles),
                         flats, bg_list, row_list, reorder_window)

    def execute_arrays(self, daddrs, vsizes, weighted, localities,
                       psum_tags, arrivals, bank_groups, banks, rows,
                       reorder_window):
        count = len(daddrs)
        if count == 0:
            return self.rank_nmp.current_cycle
        flats = (bank_groups * self.banks_per_group + banks).tolist()
        computes = (self.adder
                    + self.multiplier * weighted.astype(np.int64)).tolist()
        vbytes = (vsizes * 64).tolist()
        return self._run(daddrs.tolist(), vsizes.tolist(), computes, vbytes,
                         localities.tolist(), psum_tags.tolist(),
                         arrivals.tolist(), flats, bank_groups.tolist(),
                         rows.tolist(), reorder_window)

    def _run(self, daddr_list, vsize_list, computes, vbytes, locality_list,
             psum_list, arrival_list, flats, bg_list, row_list,
             reorder_window):
        rank_nmp = self.rank_nmp
        rank = rank_nmp.dram_rank
        bank_objs = rank.banks
        b_open = [-1 if b.open_row is None else b.open_row
                  for b in bank_objs]
        b_next_act = [b.next_act for b in bank_objs]
        b_next_read = [b.next_read for b in bank_objs]
        b_next_pre = [b.next_pre for b in bank_objs]
        b_activations = [b.activations for b in bank_objs]
        b_reads = [b.reads for b in bank_objs]
        b_precharges = [b.precharges for b in bank_objs]
        rs = self._rank_scalars()
        st = [0] * ST_SIZE
        cache = rank_nmp.cache
        entries = cache._entries if cache is not None else None
        window_size = reorder_window if reorder_window > 1 else 1
        last = _execute_window_python(
            daddr_list, vsize_list, computes, vbytes, locality_list,
            arrival_list, flats, bg_list, row_list, window_size,
            b_open, b_next_act, b_next_read, b_next_pre,
            b_activations, b_reads, b_precharges,
            rs, self.timing_params, st, entries, self.capacity,
            self.cache_latency)
        for i, bank in enumerate(bank_objs):
            open_row = b_open[i]
            bank.open_row = None if open_row < 0 else open_row
            bank.next_act = b_next_act[i]
            bank.next_read = b_next_read[i]
            bank.next_pre = b_next_pre[i]
            bank.activations = b_activations[i]
            bank.reads = b_reads[i]
            bank.precharges = b_precharges[i]
        self._write_rank_scalars(rs)
        self._apply_stats(st, psum_list)
        return last


class FlatRankKernel(_RankKernelBase):
    """Struct-of-arrays kernel wrapper (numba-jitted or un-jitted).

    Keeps a persistent flat LRU (``int64 -> slot`` dict plus linked-list
    arrays) mirroring the RankCache's ``OrderedDict``; after every call
    the LRU effects are replayed onto the OrderedDict so the object
    layer stays authoritative, and the flat side is rebuilt from the
    OrderedDict whenever the two disagree on occupancy (e.g. after an
    external ``flush()``).
    """

    def __init__(self, rank_nmp, fn=None, rebuild_fn=None,
                 dict_factory=None):
        super().__init__(rank_nmp)
        if fn is None:
            fn = _execute_window_flat
        if rebuild_fn is None:
            rebuild_fn = _rebuild_lru_flat
        self.fn = fn
        self.rebuild_fn = rebuild_fn
        if dict_factory is None:
            if _numba_typed is not None:
                dict_factory = lambda: _numba_typed.Dict.empty(  # noqa: E731
                    key_type=_numba_types.int64,
                    value_type=_numba_types.int64)
            else:
                dict_factory = dict
        self.dict_factory = dict_factory
        self.flavor = "numba" if _njit is not None and \
            fn is _execute_window_flat and KERNEL_FLAVOR == "numba" \
            else "flat-python"
        capacity = max(1, self.capacity)
        self._cache_slot = dict_factory()
        self._lru_prev = np.empty(capacity, np.int64)
        self._lru_next = np.empty(capacity, np.int64)
        self._lru_key = np.empty(capacity, np.int64)
        self._cs = np.zeros(CS_SIZE, np.int64)
        self._cs[CS_HEAD] = -1
        self._cs[CS_TAIL] = -1

    def reset(self):
        self._cache_slot = self.dict_factory()
        self._cs[CS_HEAD] = -1
        self._cs[CS_TAIL] = -1
        self._cs[CS_USED] = 0

    def _sync_cache_in(self):
        """Rebuild the flat LRU when the OrderedDict mirror diverged."""
        cache = self.rank_nmp.cache
        if cache is None:
            return
        entries = cache._entries
        if len(entries) == int(self._cs[CS_USED]):
            return
        self._cache_slot = self.dict_factory()
        keys = np.fromiter(entries, np.int64, len(entries))
        self.rebuild_fn(keys, self._cache_slot, self._lru_prev,
                        self._lru_next, self._lru_key, self._cs)

    def _replay_cache_out(self, exec_order, daddrs, localities):
        """Replay LRU effects of one call onto the OrderedDict mirror."""
        cache = self.rank_nmp.cache
        if cache is None:
            return
        entries = cache._entries
        capacity = self.capacity
        move_to_end = entries.move_to_end
        popitem = entries.popitem
        for i in exec_order.tolist():
            daddr = int(daddrs[i])
            if daddr in entries:
                move_to_end(daddr)
            elif localities[i]:
                if len(entries) >= capacity:
                    popitem(last=False)
                entries[daddr] = None

    def execute_arrays(self, daddrs, vsizes, weighted, localities,
                       psum_tags, arrivals, bank_groups, banks, rows,
                       reorder_window):
        rank_nmp = self.rank_nmp
        count = len(daddrs)
        if count == 0:
            return rank_nmp.current_cycle
        self._sync_cache_in()
        flats = bank_groups * self.banks_per_group + banks
        computes = self.adder + self.multiplier * weighted.astype(np.int64)
        vbytes = vsizes * 64
        locality_ints = localities.astype(np.uint8)
        rank = rank_nmp.dram_rank
        bank_objs = rank.banks
        num_banks = len(bank_objs)
        b_open = np.empty(num_banks, np.int64)
        b_next_act = np.empty(num_banks, np.int64)
        b_next_read = np.empty(num_banks, np.int64)
        b_next_pre = np.empty(num_banks, np.int64)
        b_activations = np.empty(num_banks, np.int64)
        b_reads = np.empty(num_banks, np.int64)
        b_precharges = np.empty(num_banks, np.int64)
        for i, bank in enumerate(bank_objs):
            open_row = bank.open_row
            b_open[i] = -1 if open_row is None else open_row
            b_next_act[i] = bank.next_act
            b_next_read[i] = bank.next_read
            b_next_pre[i] = bank.next_pre
            b_activations[i] = bank.activations
            b_reads[i] = bank.reads
            b_precharges[i] = bank.precharges
        rs = np.asarray(self._rank_scalars(), dtype=np.int64)
        tp = np.asarray(self.timing_params, dtype=np.int64)
        st = np.zeros(ST_SIZE, np.int64)
        exec_order = np.empty(count, np.int64)
        use_cache = 1 if rank_nmp.cache is not None else 0
        window_size = reorder_window if reorder_window > 1 else 1
        last = self.fn(
            daddrs, vsizes, computes, vbytes, locality_ints,
            arrivals, flats, bank_groups, rows,
            window_size, self.num_bank_groups,
            b_open, b_next_act, b_next_read, b_next_pre,
            b_activations, b_reads, b_precharges,
            rs, tp, st,
            use_cache, self._cache_slot, self._lru_prev, self._lru_next,
            self._lru_key, self._cs, max(1, self.capacity),
            self.cache_latency, exec_order)
        for i, bank in enumerate(bank_objs):
            open_row = int(b_open[i])
            bank.open_row = None if open_row < 0 else open_row
            bank.next_act = int(b_next_act[i])
            bank.next_read = int(b_next_read[i])
            bank.next_pre = int(b_next_pre[i])
            bank.activations = int(b_activations[i])
            bank.reads = int(b_reads[i])
            bank.precharges = int(b_precharges[i])
        self._write_rank_scalars(rs)
        self._replay_cache_out(exec_order, daddrs, localities)
        self._apply_stats(st, psum_tags)
        return int(last)


def make_rank_kernel(rank_nmp):
    """Kernel wrapper for one RankNMP, or None when kernels are disabled."""
    flavor = active_flavor()
    if flavor == "disabled":
        return None
    if flavor == "numba":
        return FlatRankKernel(rank_nmp)
    if flavor == "flat-python":
        return FlatRankKernel(rank_nmp, fn=_execute_window_flat_py,
                              rebuild_fn=_rebuild_lru_flat_py,
                              dict_factory=dict)
    return PythonRankKernel(rank_nmp)


def describe():
    """One-line kernel status for CLI / benchmark reporting."""
    flavor = active_flavor()
    if flavor == "disabled":
        return "kernels disabled (REPRO_DISABLE_KERNELS)"
    if flavor == "numba":
        return "numba-jitted bank state machine"
    return "pure-python kernel fallback (numba not installed)"


# Imported for the OrderedDict type used in mirror replay documentation;
# kept explicit so the dependency is visible.
_ = OrderedDict
