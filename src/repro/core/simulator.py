"""The RecNMP cycle-level simulator (Fig. 13 methodology).

The simulator wires the pieces together: SLS requests are turned into NMP
packets (packet generator + hot-entry profiling), scheduled (table-aware or
FCFS), dispatched by the NMP-extended memory controller, and executed on the
RecNMP channel (rank-NMP DRAM timing + RankCache + DIMM-NMP reduction).  The
same physical-address trace runs through the baseline DDR4 system
(:class:`~repro.dram.system.DramSystem`) so memory-latency speedups can be
reported exactly as the paper does.

The command-issue inner loop runs on one of the bit-identical execution
kernels in :mod:`repro.core.kernels` (numba-jitted when available, a
pure-python twin otherwise); each result records which flavor produced it
in :attr:`RecNMPResult.kernel_flavor`.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core import kernels as _kernels
from repro.core.instruction import NMPOpcode
from repro.core.memory_controller import NMPMemoryController
from repro.core.packet_generator import PacketGenerator, PacketGeneratorConfig
from repro.core.processing_unit import RecNMPChannel
from repro.core.rank_nmp import RankNMPConfig
from repro.core.energy import RecNMPEnergyModel
from repro.dram.system import DramSystemConfig
from repro.dram.timing import DDR4_2400
from repro.perf.baseline_cache import run_baseline_trace


@dataclass
class RecNMPConfig:
    """Configuration of one RecNMP-equipped memory channel.

    Attributes
    ----------
    num_dimms, ranks_per_dimm:
        Channel population; the paper sweeps 1x2, 1x4, 2x2, 2x4 and 4x2.
    use_rank_cache:
        Enable the memory-side RankCache ("RecNMP-base" when False).
    rank_cache_kb:
        RankCache capacity per rank in KB (128 KB is the paper's optimum).
    scheduling_policy:
        ``"table-aware"`` or ``"fcfs"``.
    enable_hot_entry_profiling:
        Fill LocalityBits from the batch profiler (the "+ profile" step).
    hot_entry_threshold:
        Repetition threshold of the profiler.
    poolings_per_packet:
        Poolings per NMP packet (Fig. 14(a) sweeps 1-8).
    vector_size_bytes:
        Embedding vector size.
    rank_assignment:
        ``"address"`` -- vectors land on ranks according to their (page-
        mapped, effectively random) physical addresses, which exposes the
        load imbalance of Fig. 14(b);
        ``"page-coloring"`` -- embedding tables are pinned to ranks and the
        concurrent SLS operators of co-located models keep every rank busy,
        modelled as balanced round-robin assignment.
    """

    num_dimms: int = 4
    ranks_per_dimm: int = 2
    use_rank_cache: bool = True
    rank_cache_kb: int = 128
    scheduling_policy: str = "table-aware"
    enable_hot_entry_profiling: bool = True
    hot_entry_threshold: int = 2
    poolings_per_packet: int = 8
    vector_size_bytes: int = 64
    rank_assignment: str = "address"
    timing: object = field(default_factory=lambda: DDR4_2400)
    opcode: NMPOpcode = NMPOpcode.SUM

    def __post_init__(self):
        if self.rank_assignment not in ("address", "page-coloring"):
            raise ValueError("rank_assignment must be 'address' or "
                             "'page-coloring'")
        if self.num_dimms <= 0 or self.ranks_per_dimm <= 0:
            raise ValueError("num_dimms and ranks_per_dimm must be positive")
        if self.rank_cache_kb <= 0 and self.use_rank_cache:
            raise ValueError("rank_cache_kb must be positive when the cache "
                             "is enabled")

    @property
    def num_ranks(self):
        return self.num_dimms * self.ranks_per_dimm

    def label(self):
        """Short configuration label, e.g. ``"4x2 RecNMP-opt"``."""
        variant = "RecNMP-base"
        if self.use_rank_cache:
            variant = "RecNMP-cache"
            if self.scheduling_policy == "table-aware":
                variant = "RecNMP-sched"
                if self.enable_hot_entry_profiling:
                    variant = "RecNMP-opt"
        return "%dx%d %s" % (self.num_dimms, self.ranks_per_dimm, variant)


@dataclass
class RecNMPResult:
    """Result of simulating one SLS workload on RecNMP."""

    total_cycles: int
    per_packet_cycles: list
    num_packets: int
    num_instructions: int
    cache_hit_rate: float
    rank_load: list
    load_imbalance: float
    baseline_cycles: int = 0
    speedup_vs_baseline: float = 0.0
    energy_nj: float = 0.0
    baseline_energy_nj: float = 0.0
    energy_savings_fraction: float = 0.0
    channel_stats: dict = field(default_factory=dict)
    kernel_flavor: str = "disabled"

    @property
    def average_packet_cycles(self):
        if not self.per_packet_cycles:
            return 0.0
        return float(np.mean(self.per_packet_cycles))

    def as_dict(self):
        return {
            "total_cycles": self.total_cycles,
            "average_packet_cycles": self.average_packet_cycles,
            "num_packets": self.num_packets,
            "num_instructions": self.num_instructions,
            "cache_hit_rate": self.cache_hit_rate,
            "load_imbalance": self.load_imbalance,
            "baseline_cycles": self.baseline_cycles,
            "speedup_vs_baseline": self.speedup_vs_baseline,
            "energy_nj": self.energy_nj,
            "baseline_energy_nj": self.baseline_energy_nj,
            "energy_savings_fraction": self.energy_savings_fraction,
            "kernel_flavor": self.kernel_flavor,
        }


class RecNMPSimulator:
    """Trace-driven, cycle-approximate simulator of a RecNMP channel."""

    def __init__(self, config=None, address_of=None):
        self.config = config or RecNMPConfig()
        rank_config = RankNMPConfig(
            timing=self.config.timing,
            use_cache=self.config.use_rank_cache,
            cache_capacity_bytes=self.config.rank_cache_kb * 1024,
            vector_size_bytes=self.config.vector_size_bytes,
        )
        self.channel = RecNMPChannel(
            num_dimms=self.config.num_dimms,
            ranks_per_dimm=self.config.ranks_per_dimm,
            rank_config=rank_config,
        )
        generator_config = PacketGeneratorConfig(
            poolings_per_packet=self.config.poolings_per_packet,
            vector_size_bytes=self.config.vector_size_bytes,
            enable_hot_entry_profiling=self.config.enable_hot_entry_profiling,
            hot_entry_threshold=self.config.hot_entry_threshold,
            opcode=self.config.opcode,
        )
        self.packet_generator = PacketGenerator(generator_config,
                                                address_of=address_of)
        self.energy_model = RecNMPEnergyModel()
        self._page_rank_cache = {}

    # ------------------------------------------------------------------ #
    # Rank assignment                                                    #
    # ------------------------------------------------------------------ #
    def _rank_of_address(self, physical_address):
        num_ranks = self.config.num_ranks
        if self.config.rank_assignment == "page-coloring":
            # Whole 4 KB pages (and therefore whole tables allocated with a
            # single colour) are pinned to a rank; colours are assigned
            # round-robin in first-touch order which balances the load of
            # concurrently-running SLS operators.
            page = physical_address // 4096
            if page not in self._page_rank_cache:
                self._page_rank_cache[page] = \
                    len(self._page_rank_cache) % num_ranks
            return self._page_rank_cache[page]
        # Address-hash assignment: the OS's random page mapping spreads 64 B
        # blocks over ranks quasi-randomly.
        block = physical_address // 64
        return (block ^ (block >> 7) ^ (block >> 13)) % num_ranks

    def _ranks_of_byte_addresses(self, addresses):
        """Vectorised address-hash assignment over a numpy address array.

        Only valid for ``rank_assignment="address"`` (stateless hash);
        page colouring is first-touch-order dependent and keeps the scalar
        path.
        """
        blocks = addresses // 64
        return (blocks ^ (blocks >> 7) ^ (blocks >> 13)) \
            % self.config.num_ranks

    # ------------------------------------------------------------------ #
    # Execution                                                          #
    # ------------------------------------------------------------------ #
    def run_requests(self, requests, compare_baseline=True,
                     per_source_submission=None):
        """Run a list of SLS requests and (optionally) the DRAM baseline.

        ``per_source_submission`` optionally groups requests into separate
        submission sources (e.g. one per SLS thread) so the FCFS baseline
        scheduling interleaves them; by default each request is a source.
        """
        controller = NMPMemoryController(
            num_ranks=self.config.num_ranks,
            scheduling_policy=self.config.scheduling_policy,
            rank_of_address=self._rank_of_address,
            ranks_of_addresses=(
                self._ranks_of_byte_addresses
                if self.config.rank_assignment == "address" else None),
        )
        if per_source_submission is None:
            per_source_submission = [[request] for request in requests]
        all_packets = []
        for source_requests in per_source_submission:
            packets = self.packet_generator.packets_for_requests(
                source_requests)
            controller.submit(packets)
            all_packets.extend(packets)
        total_cycles, per_packet = controller.dispatch(self.channel)

        num_instructions = sum(len(p) for p in all_packets)
        channel_stats = self.channel.aggregate_stats()
        rank_load = [controller.stats.per_rank_instructions.get(r, 0)
                     for r in range(self.config.num_ranks)]
        load_imbalance = self._load_imbalance(rank_load)

        result = RecNMPResult(
            total_cycles=total_cycles,
            per_packet_cycles=per_packet,
            num_packets=len(all_packets),
            num_instructions=num_instructions,
            cache_hit_rate=channel_stats["cache_hit_rate"],
            rank_load=rank_load,
            load_imbalance=load_imbalance,
            channel_stats=channel_stats,
            kernel_flavor=_kernels.active_flavor(),
        )
        self._fill_energy(result, channel_stats, requests)
        if compare_baseline:
            self._fill_baseline(result, all_packets)
        return result

    def _load_imbalance(self, rank_load):
        """Fraction of the work served by the most-loaded rank."""
        total = sum(rank_load)
        if not total:
            return 0.0
        return max(rank_load) / total

    def _fill_baseline(self, result, packets):
        """Run the same lookups through the baseline DDR4 channel.

        The baseline simulation is memoised process-wide (see
        :mod:`repro.perf.baseline_cache`): sweeps that vary only the RecNMP
        configuration replay the stored baseline instead of re-simulating it.
        """
        addresses = [inst.daddr * 64
                     for packet in packets
                     for inst in packet.instructions]
        baseline_config = DramSystemConfig(
            timing=self.config.timing,
            num_channels=1,
            dimms_per_channel=self.config.num_dimms,
            ranks_per_dimm=self.config.ranks_per_dimm,
        )
        baseline_result = run_baseline_trace(
            baseline_config, addresses,
            request_bytes=self.config.vector_size_bytes,
            outstanding_per_channel=32)
        result.baseline_cycles = baseline_result.cycles
        if result.total_cycles:
            result.speedup_vs_baseline = (baseline_result.cycles
                                          / result.total_cycles)
        # Baseline memory energy for the same lookups.
        num_lookups = result.num_instructions
        baseline_energy = self.energy_model.baseline_energy(
            num_lookups=num_lookups,
            vector_bytes=self.config.vector_size_bytes,
            activations=(baseline_result.per_channel_stats[0].row_misses
                         + baseline_result.per_channel_stats[0].row_conflicts
                         if baseline_result.per_channel_stats else
                         num_lookups),
            elapsed_ns=baseline_result.cycles
            * self.config.timing.cycle_time_ns,
            active_ranks=self.config.num_ranks,
        )
        result.baseline_energy_nj = baseline_energy.total_nj
        if result.baseline_energy_nj > 0:
            result.energy_savings_fraction = \
                1.0 - result.energy_nj / result.baseline_energy_nj

    def _fill_energy(self, result, channel_stats, requests):
        """RecNMP-side memory energy of the run."""
        num_outputs = sum(request.batch_size for request in requests)
        elapsed_ns = result.total_cycles * self.config.timing.cycle_time_ns
        report = self.energy_model.recnmp_energy(
            num_lookups=channel_stats["instructions"],
            vector_bytes=self.config.vector_size_bytes,
            activations=channel_stats["activations"],
            cache_hits=channel_stats["cache_hits"],
            elapsed_ns=elapsed_ns,
            num_outputs=num_outputs,
            active_ranks=self.config.num_ranks,
        )
        result.energy_nj = report.total_nj

    # ------------------------------------------------------------------ #
    def reset(self):
        """Reset all per-run state so the simulator can be reused.

        Clears the channel (RankCaches, DRAM timing, statistics), the
        page-colouring rank assignment, and the packet generator's packet-id
        counter and retained hot-entry profiles -- without the last one a
        reused simulator leaked locality state across runs.
        """
        self.channel.reset()
        self._page_rank_cache.clear()
        self.packet_generator.reset()
