"""DIMM-NMP module (Fig. 8(b)).

The DIMM-NMP module sits in the DIMM buffer chip: it receives NMP-Insts over
the DIMM interface, demultiplexes them to the rank-NMP modules by Rank-ID,
buffers the per-rank partial sums, and reduces them with an element-wise
adder tree before returning the final DIMM.Sum to the host.
"""

from dataclasses import dataclass, field

from repro.core.rank_nmp import RankNMP, RankNMPConfig


@dataclass
class DimmNMPStats:
    """Counters of one DIMM-NMP module."""

    packets: int = 0
    instructions_dispatched: int = 0
    psum_reductions: int = 0
    sum_transfers: int = 0
    idle_dispatch_cycles: int = 0


class DimmNMP:
    """One DIMM-NMP module plus its rank-NMP children.

    Parameters
    ----------
    num_ranks:
        Ranks on the DIMM (each gets a rank-NMP module).
    rank_config:
        The shared :class:`RankNMPConfig`.
    dispatch_rate_insts_per_cycle:
        NMP-Insts the DIMM interface can deliver per DRAM cycle.  The
        compressed format sustains two instructions per cycle (double data
        rate on the C/A+DQ pins, Fig. 9(b)).
    adder_tree_latency_cycles:
        Latency of the final element-wise adder tree reduction.
    sum_transfer_cycles:
        Cycles to return one pooled result over the DIMM interface.
    """

    def __init__(self, num_ranks=2, rank_config=None,
                 dispatch_rate_insts_per_cycle=2.0,
                 adder_tree_latency_cycles=3, sum_transfer_cycles=1,
                 dimm_index=0):
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if dispatch_rate_insts_per_cycle <= 0:
            raise ValueError("dispatch rate must be positive")
        self.dimm_index = dimm_index
        self.rank_config = rank_config or RankNMPConfig()
        self.num_ranks = int(num_ranks)
        self.rank_nmps = [RankNMP(self.rank_config, rank_index=r)
                          for r in range(self.num_ranks)]
        self.dispatch_rate = float(dispatch_rate_insts_per_cycle)
        self.adder_tree_latency_cycles = int(adder_tree_latency_cycles)
        self.sum_transfer_cycles = int(sum_transfer_cycles)
        self.stats = DimmNMPStats()

    # ------------------------------------------------------------------ #
    def rank_of_instruction(self, instruction):
        """Rank-ID selection from the Daddr (round-robin over 64 B blocks).

        The packet generator's address layout interleaves consecutive
        vectors across ranks unless page colouring pins them, so the rank is
        simply a field of the block address modulo the rank count.
        """
        return int(instruction.daddr) % self.num_ranks

    def execute_packet(self, packet, start_cycle=0, rank_of=None):
        """Execute one NMP packet; returns (completion_cycle, per_rank_last).

        ``rank_of`` optionally overrides rank selection (e.g. the simulator
        passes a mapping-aware callable).  The packet completes when the
        slowest rank finishes and the adder tree + sum transfer drain.
        """
        self.stats.packets += 1
        rank_instructions = [[] for _ in range(self.num_ranks)]
        rank_arrivals = [[] for _ in range(self.num_ranks)]
        for position, instruction in enumerate(packet.instructions):
            rank = (rank_of(instruction) if rank_of is not None
                    else self.rank_of_instruction(instruction))
            if not 0 <= rank < self.num_ranks:
                raise ValueError("instruction mapped to invalid rank %d"
                                 % rank)
            arrival = start_cycle + int(position / self.dispatch_rate)
            rank_instructions[rank].append(instruction)
            rank_arrivals[rank].append(arrival)
            self.stats.instructions_dispatched += 1
        per_rank_last = []
        for rank_index, rank_nmp in enumerate(self.rank_nmps):
            if not rank_instructions[rank_index]:
                per_rank_last.append(start_cycle)
                continue
            last = rank_nmp.execute_instructions(
                rank_instructions[rank_index],
                arrival_cycles=rank_arrivals[rank_index])
            per_rank_last.append(last)
        slowest = max(per_rank_last) if per_rank_last else start_cycle
        self.stats.psum_reductions += packet.num_poolings
        self.stats.sum_transfers += packet.num_poolings
        completion = (slowest + self.adder_tree_latency_cycles
                      + self.sum_transfer_cycles * packet.num_poolings)
        return completion, per_rank_last

    # ------------------------------------------------------------------ #
    def rank_load_distribution(self, packet, rank_of=None):
        """Instruction counts per rank for one packet (load-balance metric)."""
        counts = [0] * self.num_ranks
        for instruction in packet.instructions:
            rank = (rank_of(instruction) if rank_of is not None
                    else self.rank_of_instruction(instruction))
            counts[rank] += 1
        return counts

    def aggregate_stats(self):
        """Combine DIMM- and rank-level statistics into one dictionary."""
        ranks = [rank.stats.as_dict() for rank in self.rank_nmps]
        return {
            "packets": self.stats.packets,
            "instructions_dispatched": self.stats.instructions_dispatched,
            "psum_reductions": self.stats.psum_reductions,
            "sum_transfers": self.stats.sum_transfers,
            "ranks": ranks,
        }

    def reset(self):
        """Reset all rank-NMP modules and DIMM statistics."""
        for rank_nmp in self.rank_nmps:
            rank_nmp.reset()
        self.stats = DimmNMPStats()
