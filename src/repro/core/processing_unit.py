"""RecNMP processing unit (PU): one per DIMM buffer chip (Fig. 8(a)).

A PU is a DIMM-NMP module plus one rank-NMP module per rank.  A memory
channel populated with several RecNMP DIMMs exposes ``num_dimms *
ranks_per_dimm`` concurrently active ranks; with software coordination the
partial sums of multiple PUs are combined on the host.

This module also provides :class:`RecNMPChannel`, the channel-level
composition used by the simulator: it distributes a packet's instructions
over all PUs/ranks of the channel and accounts for the shared C/A interface
through which the compressed NMP-Insts are delivered.
"""

import numpy as np

from repro.core.dimm_nmp import DimmNMP
from repro.core.rank_nmp import RankNMPConfig


class RecNMPProcessingUnit:
    """One RecNMP PU: the DIMM-NMP plus its rank-NMPs on one DIMM."""

    def __init__(self, num_ranks=2, rank_config=None, dimm_index=0):
        self.dimm_index = dimm_index
        self.dimm_nmp = DimmNMP(num_ranks=num_ranks, rank_config=rank_config,
                                dimm_index=dimm_index)

    @property
    def num_ranks(self):
        return self.dimm_nmp.num_ranks

    @property
    def rank_nmps(self):
        return self.dimm_nmp.rank_nmps

    def execute_packet(self, packet, start_cycle=0, rank_of=None):
        """Run one packet on this PU; returns the completion cycle."""
        completion, _ = self.dimm_nmp.execute_packet(
            packet, start_cycle=start_cycle, rank_of=rank_of)
        return completion

    def stats(self):
        return self.dimm_nmp.aggregate_stats()

    def reset(self):
        self.dimm_nmp.reset()


class RecNMPChannel:
    """All RecNMP PUs on one memory channel.

    Parameters
    ----------
    num_dimms, ranks_per_dimm:
        Channel population (the paper sweeps 1x2, 1x4, 2x2, 2x4, 4x2).
    rank_config:
        Shared rank-NMP configuration.
    instruction_rate_per_cycle:
        NMP-Insts the host memory controller can push over the channel per
        DRAM cycle.  The compressed format achieves 2 per cycle (Fig. 9(b)).
    """

    def __init__(self, num_dimms=4, ranks_per_dimm=2, rank_config=None,
                 instruction_rate_per_cycle=2.0):
        if num_dimms <= 0 or ranks_per_dimm <= 0:
            raise ValueError("num_dimms and ranks_per_dimm must be positive")
        self.num_dimms = int(num_dimms)
        self.ranks_per_dimm = int(ranks_per_dimm)
        self.rank_config = rank_config or RankNMPConfig()
        self.instruction_rate_per_cycle = float(instruction_rate_per_cycle)
        self.processing_units = [
            RecNMPProcessingUnit(num_ranks=ranks_per_dimm,
                                 rank_config=self.rank_config,
                                 dimm_index=d)
            for d in range(self.num_dimms)
        ]

    # ------------------------------------------------------------------ #
    @property
    def num_ranks(self):
        """Total concurrently-activatable ranks on the channel."""
        return self.num_dimms * self.ranks_per_dimm

    def rank_nmp(self, channel_rank_index):
        """Rank-NMP module for a channel-wide rank index."""
        dimm, rank = divmod(channel_rank_index, self.ranks_per_dimm)
        return self.processing_units[dimm].rank_nmps[rank]

    def all_rank_nmps(self):
        """All rank-NMP modules of the channel, in channel-rank order."""
        return [self.rank_nmp(r) for r in range(self.num_ranks)]

    # ------------------------------------------------------------------ #
    def execute_packet(self, packet, start_cycle=0, rank_of_instruction=None,
                       ranks=None):
        """Execute one packet across all ranks of the channel.

        ``rank_of_instruction`` maps an instruction to a channel-wide rank
        index (default: Daddr modulo rank count); ``ranks`` optionally
        carries the precomputed per-instruction rank indices (aligned with
        ``packet.instructions``) so the memory controller's once-per-packet
        mapping is not re-derived here.  Returns the packet completion
        cycle.
        """
        instructions = packet.instructions
        count = len(instructions)
        if ranks is None:
            if rank_of_instruction is None:
                num_ranks = self.num_ranks
                ranks = [int(inst.daddr) % num_ranks
                         for inst in instructions]
            else:
                ranks = [rank_of_instruction(inst)
                         for inst in instructions]
        # Decode every instruction's (bank group, bank, row) once for the
        # whole packet -- the rank config is shared by all rank-NMPs, so
        # one vectorised pass replaces a per-instruction decode in each
        # rank's scheduler.
        config = self.rank_config
        blocks = np.fromiter((inst.daddr for inst in instructions),
                             dtype=np.int64,
                             count=count) // config.columns_per_row
        bank_groups = (blocks % config.num_bank_groups).tolist()
        blocks //= config.num_bank_groups
        bank_indices = (blocks % config.banks_per_group).tolist()
        rows = (blocks // config.banks_per_group).tolist()
        # Group instructions per rank, preserving order; arrival times model
        # the shared C/A interface delivering instructions sequentially.
        rate = self.instruction_rate_per_cycle
        num_ranks = self.num_ranks
        per_rank = {}
        for position, instruction in enumerate(instructions):
            rank = ranks[position]
            if not 0 <= rank < num_ranks:
                raise ValueError("invalid rank %d for instruction" % rank)
            entry = per_rank.get(rank)
            if entry is None:
                entry = ([], [], ([], [], []))
                per_rank[rank] = entry
            entry[0].append(instruction)
            entry[1].append(start_cycle + int(position / rate))
            decoded = entry[2]
            decoded[0].append(bank_groups[position])
            decoded[1].append(bank_indices[position])
            decoded[2].append(rows[position])
        per_rank_last = []
        for rank_index in sorted(per_rank):
            rank_instructions, arrivals, decoded = per_rank[rank_index]
            rank_nmp = self.rank_nmp(rank_index)
            per_rank_last.append(rank_nmp.execute_instructions(
                rank_instructions, arrival_cycles=arrivals,
                decoded=decoded))
        if not per_rank_last:
            return start_cycle
        slowest = max(per_rank_last)
        # Adder-tree + DIMM.Sum transfer overhead (constant per packet, one
        # transfer cycle per pooled output).
        dimm_nmp = self.processing_units[0].dimm_nmp
        return (slowest + dimm_nmp.adder_tree_latency_cycles
                + dimm_nmp.sum_transfer_cycles * packet.num_poolings)

    @property
    def supports_packed(self):
        """True when every rank-NMP has an active command-issue kernel
        (the array-native :meth:`execute_packed` path is then available
        and bit-identical to :meth:`execute_packet`)."""
        return all(rank_nmp.supports_packed
                   for rank_nmp in self.all_rank_nmps())

    def execute_packed(self, packed, start_cycle=0, ranks=None):
        """Array-native twin of :meth:`execute_packet`.

        ``packed`` is a :class:`~repro.core.instruction.PackedInstructions`
        already in issue order; ``ranks`` the aligned per-instruction
        channel-rank indices (int64 array; defaults to Daddr modulo rank
        count like the object path).  The per-rank split, C/A arrival
        times and completion math are vectorised but cycle-identical.
        """
        count = len(packed)
        if count == 0:
            return start_cycle
        num_ranks = self.num_ranks
        if ranks is None:
            ranks = packed.daddrs % num_ranks
        else:
            ranks = np.asarray(ranks, dtype=np.int64)
        if int(ranks.min()) < 0 or int(ranks.max()) >= num_ranks:
            bad = ranks[(ranks < 0) | (ranks >= num_ranks)][0]
            raise ValueError("invalid rank %d for instruction" % int(bad))
        arrivals = start_cycle + (np.arange(count)
                                  / self.instruction_rate_per_cycle) \
            .astype(np.int64)
        per_rank_last = []
        for rank_index in np.unique(ranks).tolist():
            idx = np.nonzero(ranks == rank_index)[0]
            rank_nmp = self.rank_nmp(rank_index)
            per_rank_last.append(rank_nmp.execute_packed(
                packed.take(idx), arrivals[idx]))
        slowest = max(per_rank_last)
        dimm_nmp = self.processing_units[0].dimm_nmp
        return (slowest + dimm_nmp.adder_tree_latency_cycles
                + dimm_nmp.sum_transfer_cycles * packed.num_poolings)

    def rank_load(self, packet, rank_of_instruction=None):
        """Per-rank instruction counts for one packet."""
        if rank_of_instruction is None:
            rank_of_instruction = \
                lambda inst: int(inst.daddr) % self.num_ranks  # noqa: E731
        counts = [0] * self.num_ranks
        for instruction in packet.instructions:
            counts[rank_of_instruction(instruction)] += 1
        return counts

    def aggregate_stats(self):
        """Aggregate statistics across all PUs of the channel."""
        totals = {
            "instructions": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_bypasses": 0,
            "dram_reads": 0,
            "activations": 0,
            "bytes_from_dram": 0,
            "bytes_from_cache": 0,
        }
        for rank_nmp in self.all_rank_nmps():
            stats = rank_nmp.stats
            totals["instructions"] += stats.instructions
            totals["cache_hits"] += stats.cache_hits
            totals["cache_misses"] += stats.cache_misses
            totals["cache_bypasses"] += stats.cache_bypasses
            totals["dram_reads"] += stats.dram_reads
            totals["activations"] += stats.activations
            totals["bytes_from_dram"] += stats.bytes_from_dram
            totals["bytes_from_cache"] += stats.bytes_from_cache
        lookups = (totals["cache_hits"] + totals["cache_misses"]
                   + totals["cache_bypasses"])
        totals["cache_hit_rate"] = (totals["cache_hits"] / lookups
                                    if lookups else 0.0)
        return totals

    def reset(self):
        for pu in self.processing_units:
            pu.reset()
