"""RecNMP core: the paper's primary contribution.

This package contains the near-memory processing architecture itself:

* the compressed NMP instruction format and NMP packets,
* the packet generator (SLS operator -> NMP-Insts),
* the HW/SW co-optimisations (table-aware packet scheduling, hot-entry
  profiling),
* the rank-NMP and DIMM-NMP hardware modules and the RecNMP processing unit,
* the cycle-level RecNMP simulator and the NMP-extended memory controller,
* the execution backends (serial / thread / process) running multi-channel
  simulations in parallel,
* the C/A-bandwidth expansion analysis,
* the energy and area/power models.
"""

from repro.core.instruction import (
    NMPOpcode,
    NMPInstruction,
    NMPPacket,
    DDR_CMD_ACT,
    DDR_CMD_RD,
    DDR_CMD_PRE,
)
from repro.core.packet_generator import PacketGenerator, PacketGeneratorConfig
from repro.core.scheduler import (
    PacketScheduler,
    fcfs_interleaved_order,
    table_aware_order,
)
from repro.core.hot_entry import HotEntryProfiler, ProfileResult
from repro.core.rank_nmp import RankNMP, RankNMPConfig, RankNMPStats
from repro.core.dimm_nmp import DimmNMP
from repro.core.processing_unit import RecNMPProcessingUnit
from repro.core.simulator import (
    RecNMPSimulator,
    RecNMPConfig,
    RecNMPResult,
)
from repro.core.memory_controller import NMPMemoryController
from repro.core.backend import (
    BACKENDS,
    ParallelBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.core.multi_channel import MultiChannelRecNMP, MultiChannelResult
from repro.core.host_interface import (
    MemoryRegion,
    NMPMemoryAllocator,
    NMPKernel,
    RecNMPRuntime,
    SLSExecution,
)
from repro.core.ca_bandwidth import CABandwidthModel
from repro.core.energy import RecNMPEnergyModel, NMPEnergyParameters
from repro.core.area_power import AreaPowerModel, OverheadReport

__all__ = [
    "NMPOpcode",
    "NMPInstruction",
    "NMPPacket",
    "DDR_CMD_ACT",
    "DDR_CMD_RD",
    "DDR_CMD_PRE",
    "PacketGenerator",
    "PacketGeneratorConfig",
    "PacketScheduler",
    "fcfs_interleaved_order",
    "table_aware_order",
    "HotEntryProfiler",
    "ProfileResult",
    "RankNMP",
    "RankNMPConfig",
    "RankNMPStats",
    "DimmNMP",
    "RecNMPProcessingUnit",
    "RecNMPSimulator",
    "RecNMPConfig",
    "RecNMPResult",
    "NMPMemoryController",
    "BACKENDS",
    "ParallelBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "MultiChannelRecNMP",
    "MultiChannelResult",
    "MemoryRegion",
    "NMPMemoryAllocator",
    "NMPKernel",
    "RecNMPRuntime",
    "SLSExecution",
    "CABandwidthModel",
    "RecNMPEnergyModel",
    "NMPEnergyParameters",
    "AreaPowerModel",
    "OverheadReport",
]
