"""Command/address (C/A) bandwidth analysis (Section III-B, Fig. 9).

Sparse embedding lookups have low spatial locality, so nearly every 64 B
vector read costs a full PRE+ACT+RD command sequence.  On a conventional
DDR4 interface that consumes most of the C/A bandwidth and caps how many
ranks can be activated concurrently.  RecNMP's compressed NMP-Inst packs the
whole per-vector command sequence into one instruction transferred at double
data rate, which expands the effective C/A bandwidth by up to 8x for 64 B
vectors (more for larger vectors).

This module provides a small analytical model of both interfaces so the
expansion factor and the maximum number of concurrently-activatable ranks
can be computed and tested.
"""

from dataclasses import dataclass

from repro.dram.timing import DDR4_2400


@dataclass
class CABandwidthModel:
    """Analytical model of the C/A interface usage.

    Attributes
    ----------
    timing:
        DDR4 timing (only the burst length matters here).
    commands_per_vector_conventional:
        DDR commands needed per vector on the conventional interface when
        spatial locality is low (PRE + ACT + one RD per 64 B burst).
    nmp_insts_per_cycle:
        Compressed NMP-Insts transferable per DRAM cycle (double data rate
        over the 84-pin C/A+DQ interface -> 2 per cycle).
    """

    timing: object = None
    nmp_insts_per_cycle: float = 2.0

    def __post_init__(self):
        if self.timing is None:
            self.timing = DDR4_2400
        if self.nmp_insts_per_cycle <= 0:
            raise ValueError("nmp_insts_per_cycle must be positive")

    # ------------------------------------------------------------------ #
    # Conventional DDR interface                                          #
    # ------------------------------------------------------------------ #
    def conventional_commands_per_vector(self, vector_bytes=64,
                                         row_hit_fraction=0.0):
        """Average DDR commands per vector on the conventional interface.

        A row miss costs PRE + ACT + (vector_bytes/64) RDs; a row hit only
        the RDs.  ``row_hit_fraction`` is the fraction of vectors that hit in
        the row buffer (0-3 consecutive hits in production -> small).
        """
        if vector_bytes <= 0 or vector_bytes % 64:
            raise ValueError("vector_bytes must be a positive multiple of 64")
        if not 0.0 <= row_hit_fraction <= 1.0:
            raise ValueError("row_hit_fraction must be in [0, 1]")
        reads = vector_bytes // 64
        miss_commands = 2 + reads
        hit_commands = reads
        return (row_hit_fraction * hit_commands
                + (1.0 - row_hit_fraction) * miss_commands)

    def conventional_ca_utilization(self, vector_bytes=64,
                                    row_hit_fraction=0.0):
        """Fraction of C/A cycles consumed per data-burst window.

        In the ideal bank-interleaved case one 64 B transfer occupies the
        data bus for tBL cycles; the command overhead is the commands per
        vector divided by the data cycles available (one command slot per
        cycle).  The paper's worst case (64 B vectors, no locality) consumes
        75 % of the C/A bandwidth and cannot feed more than one rank.
        """
        commands = self.conventional_commands_per_vector(vector_bytes,
                                                         row_hit_fraction)
        data_cycles = (vector_bytes // 64) * self.timing.tBL
        return commands / data_cycles

    def conventional_max_parallel_ranks(self, vector_bytes=64,
                                        row_hit_fraction=0.0):
        """Ranks that the conventional C/A bus can keep busy concurrently."""
        utilization = self.conventional_ca_utilization(vector_bytes,
                                                       row_hit_fraction)
        return max(1, int(1.0 / utilization))

    # ------------------------------------------------------------------ #
    # Compressed NMP-Inst interface                                        #
    # ------------------------------------------------------------------ #
    def nmp_insts_per_burst_window(self, vector_bytes=64):
        """NMP-Insts deliverable during one vector's data-burst window."""
        data_cycles = (vector_bytes // 64) * self.timing.tBL
        return self.nmp_insts_per_cycle * data_cycles

    def nmp_max_parallel_ranks(self, vector_bytes=64):
        """Ranks the compressed instruction stream can keep busy.

        One NMP-Inst feeds one vector on one rank; during the tBL-cycle
        window of a single vector the interface delivers
        ``nmp_insts_per_burst_window`` instructions, i.e. that many ranks can
        be performing lookups concurrently (8 for 64 B vectors).
        """
        return int(self.nmp_insts_per_burst_window(vector_bytes))

    def expansion_factor(self, vector_bytes=64, row_hit_fraction=0.0):
        """C/A bandwidth expansion of NMP-Inst vs conventional commands.

        Defined as the ratio of concurrently-sustainable ranks between the
        compressed interface and the conventional one: 8x for 64 B vectors
        with no locality (8 ranks vs 1), higher for larger vectors because a
        single NMP-Inst then covers several data bursts.
        """
        conventional = self.conventional_max_parallel_ranks(
            vector_bytes, row_hit_fraction)
        compressed = self.nmp_max_parallel_ranks(vector_bytes)
        return compressed / conventional

    def summary(self, vector_bytes=64, row_hit_fraction=0.0):
        """Dictionary summary used by tests and the Table/figure benches."""
        return {
            "vector_bytes": vector_bytes,
            "conventional_commands_per_vector":
                self.conventional_commands_per_vector(vector_bytes,
                                                      row_hit_fraction),
            "conventional_ca_utilization":
                self.conventional_ca_utilization(vector_bytes,
                                                 row_hit_fraction),
            "conventional_max_parallel_ranks":
                self.conventional_max_parallel_ranks(vector_bytes,
                                                     row_hit_fraction),
            "nmp_max_parallel_ranks":
                self.nmp_max_parallel_ranks(vector_bytes),
            "expansion_factor": self.expansion_factor(vector_bytes,
                                                      row_hit_fraction),
            "instruction_bits": 79,
        }
