"""Packet generator: turn SLS operator calls into packets of NMP-Insts.

This module reproduces the software/memory-controller pipeline of Fig. 10 and
Fig. 13: physical addresses are generated for every embedding lookup (via the
simplified OS page mapping), the DDR command tags (ACT/RD/PRE presence) are
set from the relative position of consecutive accesses, the LocalityBit is
filled in from hot-entry profiling, and the lookups are grouped into NMP
packets of a configurable number of poolings (bounded by the 4-bit PsumTag).
"""

from dataclasses import dataclass

import numpy as np

from repro.core.hot_entry import HotEntryProfiler
from repro.core.instruction import (
    DDR_CMD_ACT,
    DDR_CMD_PRE,
    DDR_CMD_RD,
    NMPInstruction,
    NMPOpcode,
    NMPPacket,
)


@dataclass
class PacketGeneratorConfig:
    """Configuration of packet generation.

    Attributes
    ----------
    poolings_per_packet:
        How many pooling operations share one NMP packet (1-16; the paper
        sweeps 1-8 in Fig. 14(a)).
    vector_size_bytes:
        Embedding vector size (64-256 B in production).
    row_buffer_bytes:
        DRAM row size used to decide whether consecutive vectors share a row
        (and therefore can skip ACT/PRE).
    enable_hot_entry_profiling:
        If True the LocalityBit is set from a :class:`HotEntryProfiler`;
        otherwise every instruction is marked cacheable (the paper's
        "RecNMP-cache" configuration without profiling).
    hot_entry_threshold:
        Repetition threshold for the profiler.
    opcode:
        SLS-family opcode stamped on the generated instructions.
    """

    poolings_per_packet: int = 8
    vector_size_bytes: int = 64
    row_buffer_bytes: int = 8192
    enable_hot_entry_profiling: bool = True
    hot_entry_threshold: int = 2
    opcode: NMPOpcode = NMPOpcode.SUM

    def __post_init__(self):
        if not 1 <= self.poolings_per_packet <= 16:
            raise ValueError("poolings_per_packet must be in [1, 16] "
                             "(4-bit PsumTag)")
        if self.vector_size_bytes % 64:
            raise ValueError("vector_size_bytes must be a multiple of 64")
        if self.vector_size_bytes <= 0:
            raise ValueError("vector_size_bytes must be positive")
        if self.row_buffer_bytes <= 0:
            raise ValueError("row_buffer_bytes must be positive")

    @property
    def vsize(self):
        """Vector size in 64 B bursts."""
        return self.vector_size_bytes // 64


class PacketGenerator:
    """Generate NMP packets from SLS requests.

    Parameters
    ----------
    config:
        A :class:`PacketGeneratorConfig`.
    address_of:
        Callable ``(table_id, row_index) -> physical byte address``.  The
        embedding-bag layout plus the simplified OS page mapper provide this
        in the full pipeline; tests can pass simple lambdas.
    """

    def __init__(self, config=None, address_of=None):
        self.config = config or PacketGeneratorConfig()
        if address_of is None:
            # Default: dense row-major placement of a single table at 0.
            address_of = lambda table_id, row: \
                row * self.config.vector_size_bytes  # noqa: E731
        self.address_of = address_of
        self._packet_counter = 0
        self._last_profiles = {}

    @property
    def last_profiles(self):
        """Per-table :class:`ProfileResult` of the most recent batch."""
        return dict(self._last_profiles)

    def reset(self):
        """Clear cross-run state (packet ids and retained hot-entry profiles).

        Without this, a reused generator keeps numbering packets from where
        the previous run stopped and keeps serving the previous batch's
        locality profiles through :attr:`last_profiles`.
        """
        self._packet_counter = 0
        self._last_profiles = {}

    # ------------------------------------------------------------------ #
    def _daddr(self, physical_address):
        """Compress a physical byte address into the 32-bit Daddr field."""
        return (physical_address // 64) & 0xFFFFFFFF

    def _ddr_cmd_tags(self, physical_addresses):
        """Set ACT/RD/PRE presence from consecutive-access row locality.

        The host-side memory controller sets the tags from the relative
        physical address of consecutive embedding accesses: when the next
        vector falls in the same DRAM row the ACT (and the preceding PRE)
        can be elided; otherwise the full PRE+ACT+RD sequence is required.
        """
        row_bytes = self.config.row_buffer_bytes
        tags = []
        previous_row = None
        for address in physical_addresses:
            row = address // row_bytes
            if previous_row is not None and row == previous_row:
                tags.append(DDR_CMD_RD)
            else:
                tags.append(DDR_CMD_ACT | DDR_CMD_RD | DDR_CMD_PRE)
            previous_row = row
        return tags

    # ------------------------------------------------------------------ #
    def packets_for_request(self, request, model_id=0, batch_index=0,
                            profile=None):
        """Generate the NMP packets for one :class:`SLSRequest`.

        ``profile`` optionally passes a pre-computed
        :class:`~repro.core.hot_entry.ProfileResult`; otherwise the profiler
        runs on the request's own indices when profiling is enabled.
        """
        config = self.config
        if config.enable_hot_entry_profiling and profile is None:
            profiler = HotEntryProfiler(threshold=config.hot_entry_threshold)
            profile = profiler.profile(request.indices,
                                       table_id=request.table_id)
        # Validate the shared fields once per request so the instructions
        # can be built with the no-validation fast constructor below (the
        # per-instruction fields are in range by construction: Daddr is
        # masked, the PsumTag slot is bounded by poolings_per_packet).
        opcode = NMPOpcode(config.opcode)
        vsize = int(config.vsize)
        if not 1 <= vsize < 16:
            raise ValueError("vsize must be in [1, 16)")
        table_id = request.table_id
        packets = []
        pooling_groups = list(request.pooling_slices())
        for start in range(0, len(pooling_groups),
                           config.poolings_per_packet):
            group = pooling_groups[start:start + config.poolings_per_packet]
            instructions = []
            # Collect the physical addresses of the group in issue order to
            # derive the DDR command tags.
            flat = []
            for tag_slot, (pooling_index, indices, weights) in enumerate(group):
                for position, row in enumerate(indices):
                    weight = (float(weights[position])
                              if weights is not None else 1.0)
                    flat.append((tag_slot, pooling_index, int(row), weight))
            addresses = [self.address_of(request.table_id, row)
                         for _, _, row, _ in flat]
            ddr_tags = self._ddr_cmd_tags(addresses)
            profiling = config.enable_hot_entry_profiling
            trusted = NMPInstruction.trusted
            append = instructions.append
            for (tag_slot, pooling_index, row, weight), address, ddr_cmd in \
                    zip(flat, addresses, ddr_tags):
                locality = bool(profile.is_hot(row)) if profiling else True
                append(trusted(
                    opcode,
                    ddr_cmd,
                    (address // 64) & 0xFFFFFFFF,
                    vsize,
                    weight,
                    locality,
                    tag_slot,
                    table_id=table_id,
                    pooling_index=pooling_index,
                    row_index=row,
                ))
            packets.append(NMPPacket(instructions=instructions,
                                     table_id=request.table_id,
                                     model_id=model_id,
                                     batch_index=batch_index,
                                     packet_id=self._packet_counter))
            self._packet_counter += 1
        return packets

    def packets_for_requests(self, requests, model_id=0):
        """Generate packets for a list of SLS requests (one batch)."""
        packets = []
        profiles = None
        if self.config.enable_hot_entry_profiling:
            profiler = HotEntryProfiler(
                threshold=self.config.hot_entry_threshold)
            profiles = profiler.profile_requests(requests)
            self._last_profiles = profiles
        for batch_index, request in enumerate(requests):
            profile = profiles.get(request.table_id) if profiles else None
            packets.extend(self.packets_for_request(
                request, model_id=model_id, batch_index=batch_index,
                profile=profile))
        return packets

    # ------------------------------------------------------------------ #
    def rank_load(self, packets, rank_of_address, num_ranks):
        """Distribution of instructions over ranks for a list of packets.

        Returns an integer array of length ``num_ranks`` counting how many
        embedding lookups each rank serves -- the quantity behind the
        load-imbalance analysis of Fig. 14(b).
        """
        counts = np.zeros(num_ranks, dtype=np.int64)
        for packet in packets:
            for inst in packet.instructions:
                counts[rank_of_address(inst.daddr * 64)] += 1
        return counts
