"""RecNMP memory energy model (Section V-C, "Memory energy savings").

RecNMP saves memory energy in three ways relative to the CPU baseline:

1. only the pooled outputs cross the off-chip DIMM interface instead of
   every embedding vector (22 pJ/bit of off-chip I/O avoided),
2. RankCache hits avoid DRAM array reads and activations entirely,
3. the shorter execution time reduces background/leakage energy.

The per-operation constants come from Table I (plus the RankCache access and
FP32 arithmetic energies used for the NMP datapath).
"""

from dataclasses import dataclass

from repro.dram.energy import DramEnergyParameters


@dataclass(frozen=True)
class NMPEnergyParameters:
    """Per-operation energy constants for the RecNMP datapath (Table I)."""

    rankcache_access_pj: float = 50.0
    fp32_add_pj: float = 7.89
    fp32_mult_pj: float = 25.2
    dram: DramEnergyParameters = DramEnergyParameters()

    def __post_init__(self):
        for name in ("rankcache_access_pj", "fp32_add_pj", "fp32_mult_pj"):
            if getattr(self, name) < 0:
                raise ValueError("%s must be non-negative" % name)


@dataclass
class EnergyReport:
    """Energy breakdown (nanojoules) of one SLS execution."""

    activate_nj: float = 0.0
    dram_read_nj: float = 0.0
    offchip_io_nj: float = 0.0
    rankcache_nj: float = 0.0
    compute_nj: float = 0.0
    background_nj: float = 0.0

    @property
    def total_nj(self):
        return (self.activate_nj + self.dram_read_nj + self.offchip_io_nj
                + self.rankcache_nj + self.compute_nj + self.background_nj)

    def as_dict(self):
        return {
            "activate_nj": self.activate_nj,
            "dram_read_nj": self.dram_read_nj,
            "offchip_io_nj": self.offchip_io_nj,
            "rankcache_nj": self.rankcache_nj,
            "compute_nj": self.compute_nj,
            "background_nj": self.background_nj,
            "total_nj": self.total_nj,
        }


class RecNMPEnergyModel:
    """Compute baseline-vs-RecNMP memory energy for an SLS workload."""

    def __init__(self, parameters=None):
        self.parameters = parameters or NMPEnergyParameters()

    # ------------------------------------------------------------------ #
    def baseline_energy(self, num_lookups, vector_bytes, activations,
                        elapsed_ns, active_ranks=8, batch_outputs=0,
                        output_bytes=0):
        """Energy of the CPU baseline: every vector crosses the interface."""
        p = self.parameters
        dram = p.dram
        report = EnergyReport()
        bytes_read = num_lookups * vector_bytes
        report.activate_nj = activations * dram.activate_nj
        report.dram_read_nj = bytes_read * 8 * dram.read_write_pj_per_bit \
            / 1_000.0
        report.offchip_io_nj = bytes_read * 8 * dram.offchip_io_pj_per_bit \
            / 1_000.0
        # The CPU performs the pooling additions too, but that energy lives
        # in the core, not in the memory system the paper compares.
        report.background_nj = (dram.background_mw_per_rank * active_ranks *
                                elapsed_ns) / 1_000_000.0
        del batch_outputs, output_bytes
        return report

    def recnmp_energy(self, num_lookups, vector_bytes, activations,
                      cache_hits, elapsed_ns, num_outputs, active_ranks=8,
                      weighted=False):
        """Energy of RecNMP execution of the same workload.

        ``cache_hits`` vectors are served from the RankCache (no DRAM read,
        no activation); only ``num_outputs`` pooled vectors cross the
        off-chip interface.
        """
        p = self.parameters
        dram = p.dram
        report = EnergyReport()
        dram_lookups = max(0, num_lookups - cache_hits)
        bytes_read = dram_lookups * vector_bytes
        report.activate_nj = activations * dram.activate_nj
        report.dram_read_nj = bytes_read * 8 * dram.read_write_pj_per_bit \
            / 1_000.0
        output_bytes = num_outputs * vector_bytes
        report.offchip_io_nj = output_bytes * 8 * dram.offchip_io_pj_per_bit \
            / 1_000.0
        # RankCache is consulted for every lookup and filled on misses.
        cache_accesses = num_lookups + dram_lookups
        report.rankcache_nj = cache_accesses * p.rankcache_access_pj / 1_000.0
        elements_per_vector = vector_bytes / 4.0
        adds = num_lookups * elements_per_vector
        mults = adds if weighted else 0.0
        report.compute_nj = (adds * p.fp32_add_pj
                             + mults * p.fp32_mult_pj) / 1_000.0
        report.background_nj = (dram.background_mw_per_rank * active_ranks *
                                elapsed_ns) / 1_000_000.0
        return report

    # ------------------------------------------------------------------ #
    def savings_fraction(self, baseline_report, recnmp_report):
        """Relative memory-energy saving of RecNMP vs the baseline."""
        baseline = baseline_report.total_nj
        if baseline <= 0:
            raise ValueError("baseline energy must be positive")
        return 1.0 - recnmp_report.total_nj / baseline
