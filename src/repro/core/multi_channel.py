"""Multi-channel RecNMP coordination.

A production server has several memory channels (four in Table I), each of
which can be populated with RecNMP-equipped DIMMs.  The paper notes that
partial sums "could be accumulated across multiple RecNMP PUs with software
coordination" and that multiple DDR4 channels "can also be utilized with
software coordination".  This module provides that coordination layer:

* embedding tables are distributed over the channels (round-robin by table,
  which keeps each SLS operator's lookups on a single channel and lets the
  channels run independently), and
* a batch of SLS requests is dispatched to the per-channel simulators, which
  execute concurrently in time -- the batch finishes when the slowest
  channel finishes -- while latency, energy and cache statistics aggregate
  across channels.
"""

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.simulator import RecNMPConfig, RecNMPSimulator


@dataclass
class MultiChannelResult:
    """Aggregate result of one multi-channel dispatch."""

    total_cycles: int
    per_channel_cycles: list
    per_channel_instructions: list
    baseline_cycles: int = 0
    speedup_vs_baseline: float = 0.0
    energy_nj: float = 0.0
    baseline_energy_nj: float = 0.0
    cache_hit_rate: float = 0.0
    channel_results: list = field(default_factory=list)

    @property
    def num_channels(self):
        return len(self.per_channel_cycles)

    @property
    def channel_utilization(self):
        """Fraction of lookups on the busiest channel (1/num_channels ideal)."""
        total = sum(self.per_channel_instructions)
        if not total:
            return 0.0
        return max(self.per_channel_instructions) / total


class MultiChannelRecNMP:
    """Software coordinator for RecNMP PUs across several memory channels.

    Parameters
    ----------
    num_channels:
        Memory channels populated with RecNMP DIMMs (Table I: 4).
    channel_config:
        The per-channel :class:`RecNMPConfig` (all channels identical).
    address_of:
        Callable ``(table_id, row) -> physical byte address`` shared by all
        channels (the channel selection is by table, not by address bits,
        so one SLS operator never straddles channels).
    max_workers:
        Worker threads used to simulate the channels concurrently; defaults
        to one per channel.  Pass 1 to force sequential execution.
    """

    def __init__(self, num_channels=4, channel_config=None, address_of=None,
                 max_workers=None):
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.num_channels = int(num_channels)
        self.channel_config = channel_config or RecNMPConfig()
        self.max_workers = max_workers
        self.simulators = [
            RecNMPSimulator(self.channel_config, address_of=address_of)
            for _ in range(self.num_channels)
        ]

    # ------------------------------------------------------------------ #
    def channel_of_table(self, table_id):
        """Channel a table (and therefore its SLS operators) is placed on."""
        if table_id < 0:
            raise ValueError("table_id must be non-negative")
        return int(table_id) % self.num_channels

    def partition_requests(self, requests):
        """Split a request list into per-channel lists by table placement."""
        partitions = [[] for _ in range(self.num_channels)]
        for request in requests:
            partitions[self.channel_of_table(request.table_id)].append(request)
        return partitions

    # ------------------------------------------------------------------ #
    def run_requests(self, requests, compare_baseline=True):
        """Dispatch a batch of SLS requests across all channels.

        Channels are independent (per-channel simulators, disjoint table
        partitions), so they are simulated concurrently on a thread pool.
        The dominant saving for sweeps comes from the process-wide memoised
        baseline cache the per-channel DDR4 comparisons hit; the thread
        pool overlaps whatever work releases the GIL and keeps the
        coordination layer ready for process-based execution (ROADMAP).
        """
        partitions = self.partition_requests(requests)
        channel_results = [None] * self.num_channels
        jobs = [(slot, simulator, channel_requests)
                for slot, (simulator, channel_requests)
                in enumerate(zip(self.simulators, partitions))
                if channel_requests]

        def run_channel(simulator, channel_requests):
            return simulator.run_requests(channel_requests,
                                          compare_baseline=compare_baseline)

        if len(jobs) > 1 and (self.max_workers is None
                              or self.max_workers > 1):
            workers = len(jobs) if self.max_workers is None else \
                min(self.max_workers, len(jobs))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [(slot, pool.submit(run_channel, simulator,
                                              channel_requests))
                           for slot, simulator, channel_requests in jobs]
                for slot, future in futures:
                    channel_results[slot] = future.result()
        else:
            for slot, simulator, channel_requests in jobs:
                channel_results[slot] = run_channel(simulator,
                                                    channel_requests)
        per_channel_cycles = [r.total_cycles if r else 0
                              for r in channel_results]
        per_channel_instructions = [r.num_instructions if r else 0
                                    for r in channel_results]
        executed = [r for r in channel_results if r is not None]
        if not executed:
            raise ValueError("no requests were dispatched")
        total_cycles = max(per_channel_cycles)
        aggregate = MultiChannelResult(
            total_cycles=total_cycles,
            per_channel_cycles=per_channel_cycles,
            per_channel_instructions=per_channel_instructions,
            channel_results=channel_results,
        )
        aggregate.energy_nj = sum(r.energy_nj for r in executed)
        lookups = sum(r.num_instructions for r in executed)
        if lookups:
            aggregate.cache_hit_rate = sum(
                r.cache_hit_rate * r.num_instructions for r in executed
            ) / lookups
        if compare_baseline:
            # The host baseline also spreads the tables over its channels, so
            # the baseline batch time is the slowest channel's baseline time.
            aggregate.baseline_cycles = max(r.baseline_cycles
                                            for r in executed)
            aggregate.baseline_energy_nj = sum(r.baseline_energy_nj
                                               for r in executed)
            if aggregate.total_cycles:
                aggregate.speedup_vs_baseline = (aggregate.baseline_cycles
                                                 / aggregate.total_cycles)
        return aggregate

    def reset(self):
        """Reset every channel's simulator state."""
        for simulator in self.simulators:
            simulator.reset()
