"""Multi-channel RecNMP coordination.

A production server has several memory channels (four in Table I), each of
which can be populated with RecNMP-equipped DIMMs.  The paper notes that
partial sums "could be accumulated across multiple RecNMP PUs with software
coordination" and that multiple DDR4 channels "can also be utilized with
software coordination".  This module provides that coordination layer:

* embedding tables are distributed over the channels (round-robin by table,
  which keeps each SLS operator's lookups on a single channel and lets the
  channels run independently), and
* a batch of SLS requests is dispatched to the per-channel simulators, which
  execute concurrently in time -- the batch finishes when the slowest
  channel finishes -- while latency, energy and cache statistics aggregate
  across channels.
"""

from dataclasses import dataclass, field

from repro.core.backend import resolve_backend
from repro.core.simulator import RecNMPConfig, RecNMPSimulator


@dataclass
class MultiChannelResult:
    """Aggregate result of one multi-channel dispatch."""

    total_cycles: int
    per_channel_cycles: list
    per_channel_instructions: list
    baseline_cycles: int = 0
    speedup_vs_baseline: float = 0.0
    energy_nj: float = 0.0
    baseline_energy_nj: float = 0.0
    cache_hit_rate: float = 0.0
    channel_results: list = field(default_factory=list)

    @property
    def num_channels(self):
        return len(self.per_channel_cycles)

    @property
    def channel_utilization(self):
        """Fraction of lookups on the busiest channel (1/num_channels ideal)."""
        total = sum(self.per_channel_instructions)
        if not total:
            return 0.0
        return max(self.per_channel_instructions) / total


class MultiChannelRecNMP:
    """Software coordinator for RecNMP PUs across several memory channels.

    Parameters
    ----------
    num_channels:
        Memory channels populated with RecNMP DIMMs (Table I: 4).
    channel_config:
        The per-channel :class:`RecNMPConfig` (all channels identical).
    address_of:
        Callable ``(table_id, row) -> physical byte address`` shared by all
        channels (the channel selection is by table, not by address bits,
        so one SLS operator never straddles channels).
    max_workers:
        Upper bound on concurrent workers; defaults to one per busy
        channel.  Pass 1 to force sequential execution.
    backend:
        Execution backend for the per-channel simulations: ``"serial"``
        (default: fastest for the GIL-bound cycle loops), ``"thread"``,
        ``"process"`` (true multi-core; needs a picklable
        ``address_of``), ``"shared-memory"`` (the process pool with the
        request arrays shipped through one shared-memory segment per
        dispatch and the config broadcast once per pool), or a ready
        :class:`~repro.core.backend.ParallelBackend` instance.  The
        process backend rebuilds fresh channel simulators per dispatch in
        its workers (the per-run-reset contract of the registry systems);
        serial/thread reuse the coordinator's persistent simulators.
    """

    def __init__(self, num_channels=4, channel_config=None, address_of=None,
                 max_workers=None, backend=None):
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.num_channels = int(num_channels)
        self.channel_config = channel_config or RecNMPConfig()
        self.max_workers = max_workers
        self.address_of = address_of
        self.backend = resolve_backend(backend, max_workers=max_workers)
        self.simulators = [
            RecNMPSimulator(self.channel_config, address_of=address_of)
            for _ in range(self.num_channels)
        ]

    # ------------------------------------------------------------------ #
    def channel_of_table(self, table_id):
        """Channel a table (and therefore its SLS operators) is placed on."""
        if table_id < 0:
            raise ValueError("table_id must be non-negative")
        return int(table_id) % self.num_channels

    def partition_requests(self, requests):
        """Split a request list into per-channel lists by table placement."""
        partitions = [[] for _ in range(self.num_channels)]
        for request in requests:
            partitions[self.channel_of_table(request.table_id)].append(request)
        return partitions

    # ------------------------------------------------------------------ #
    def run_requests(self, requests, compare_baseline=True):
        """Dispatch a batch of SLS requests across all channels.

        Channels are independent (per-channel simulators, disjoint table
        partitions), so their simulation is delegated to the configured
        :class:`~repro.core.backend.ParallelBackend`: serial/thread run
        the coordinator's own simulators, the process backend ships
        picklable ``(config, requests)`` work units to a process pool so
        N channels use N cores, and merges worker-side baseline-cache
        entries back into this process.
        """
        partitions = self.partition_requests(requests)
        channel_results = [None] * self.num_channels
        jobs = [(slot, simulator, channel_requests)
                for slot, (simulator, channel_requests)
                in enumerate(zip(self.simulators, partitions))
                if channel_requests]
        if jobs:
            results = self.backend.run_channels(self, jobs,
                                                compare_baseline)
            for (slot, _, _), result in zip(jobs, results):
                channel_results[slot] = result
        per_channel_cycles = [r.total_cycles if r else 0
                              for r in channel_results]
        per_channel_instructions = [r.num_instructions if r else 0
                                    for r in channel_results]
        executed = [r for r in channel_results if r is not None]
        if not executed:
            raise ValueError("no requests were dispatched")
        total_cycles = max(per_channel_cycles)
        aggregate = MultiChannelResult(
            total_cycles=total_cycles,
            per_channel_cycles=per_channel_cycles,
            per_channel_instructions=per_channel_instructions,
            channel_results=channel_results,
        )
        aggregate.energy_nj = sum(r.energy_nj for r in executed)
        lookups = sum(r.num_instructions for r in executed)
        if lookups:
            aggregate.cache_hit_rate = sum(
                r.cache_hit_rate * r.num_instructions for r in executed
            ) / lookups
        if compare_baseline:
            # The host baseline also spreads the tables over its channels, so
            # the baseline batch time is the slowest channel's baseline time.
            aggregate.baseline_cycles = max(r.baseline_cycles
                                            for r in executed)
            aggregate.baseline_energy_nj = sum(r.baseline_energy_nj
                                               for r in executed)
            if aggregate.total_cycles:
                aggregate.speedup_vs_baseline = (aggregate.baseline_cycles
                                                 / aggregate.total_cycles)
        return aggregate

    def reset(self):
        """Reset every channel's simulator state."""
        for simulator in self.simulators:
            simulator.reset()

    def close(self):
        """Release pooled backend workers (idempotent)."""
        self.backend.shutdown()

    def __enter__(self):
        """Coordinators are context managers: exit releases the backend."""
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False
