"""Adapters plugging the legacy system APIs into :class:`EmbeddingSystem`.

One adapter per system family:

* :class:`HostSystem` -- the CPU + DDR4 baseline (cycle-level, memoised),
* :class:`TensorDIMMSystem` / :class:`ChameleonSystem` -- the analytical
  DIMM-level NMP baselines, grounded on the simulated host cycle count,
* :class:`RecNMPSystem` -- one RecNMP-equipped channel (cycle-level),
* :class:`MultiChannelSystem` -- the software-coordinated multi-channel
  RecNMP configuration.

Importing this module registers the built-in system names with the
registry (``host``, ``tensordimm``, ``chameleon``, ``recnmp-base``,
``recnmp-cache``, ``recnmp-sched``, ``recnmp-opt``, ``recnmp-opt-4ch``).
All adapters share one keyword vocabulary (``num_dimms``,
``ranks_per_dimm``, ``vector_size_bytes``, ``address_of`` ...), so
``build_system(name, **overrides)`` works uniformly across families.
"""

from repro.baselines.chameleon import Chameleon
from repro.baselines.host import HostBaseline
from repro.baselines.tensordimm import TensorDIMM
from repro.core.multi_channel import MultiChannelRecNMP
from repro.core.simulator import RecNMPConfig, RecNMPSimulator
from repro.dram.system import DramSystemConfig
from repro.dram.timing import DDR4_2400
from repro.systems.base import EmbeddingSystem, SystemResult, TableLayout
from repro.systems.registry import register_system


def _resolve_address_of(address_of, vector_size_bytes, table_rows):
    """Default to a dense :class:`TableLayout` when no map is given."""
    if address_of is not None:
        return address_of
    layout = TableLayout(num_rows=table_rows, vector_bytes=vector_size_bytes)
    return layout.address_of


def _workload_size(requests):
    return len(requests), sum(request.total_lookups for request in requests)


class HostSystem(EmbeddingSystem):
    """Host CPU executing SLS over the conventional DDR4 channel."""

    def __init__(self, name="host", num_dimms=4, ranks_per_dimm=2,
                 vector_size_bytes=64, address_of=None, table_rows=100_000,
                 timing=None, outstanding=32, compare_baseline=True):
        del compare_baseline  # the host *is* the baseline
        self.name = name
        self.timing = timing or DDR4_2400
        self.vector_size_bytes = vector_size_bytes
        self.outstanding = outstanding
        self.address_of = _resolve_address_of(address_of, vector_size_bytes,
                                              table_rows)
        # Same shape as the RecNMP baseline comparison (one channel,
        # identically populated) so cycle counts -- and memoised baseline
        # cache entries -- line up across systems.
        self.dram_config = DramSystemConfig(
            timing=self.timing, num_channels=1,
            dimms_per_channel=num_dimms, ranks_per_dimm=ranks_per_dimm)
        self.baseline = HostBaseline(dram_config=self.dram_config)

    def run(self, requests):
        result = self.baseline.run_requests(
            requests, self.address_of,
            vector_bytes=self.vector_size_bytes,
            outstanding=self.outstanding)
        num_requests, num_lookups = _workload_size(requests)
        return SystemResult(
            system=self.name,
            total_cycles=result.cycles,
            latency_ns=result.latency_ns,
            num_requests=num_requests,
            num_lookups=num_lookups,
            baseline_cycles=result.cycles,
            speedup_vs_baseline=1.0,
            energy_nj=result.energy_nj,
            baseline_energy_nj=result.energy_nj,
            energy_savings_fraction=0.0,
            extras={
                "achieved_bandwidth_gbps": result.achieved_bandwidth_gbps,
                "row_hit_rate": result.row_hit_rate,
            },
            raw=result,
        )

    def describe(self):
        return "%s: CPU + DDR4, %dx%d channel population" % (
            self.name, self.dram_config.dimms_per_channel,
            self.dram_config.ranks_per_dimm)


class _AnalyticalNMPSystem(EmbeddingSystem):
    """Shared adapter for the analytical DIMM-level NMP baselines.

    Both TensorDIMM and Chameleon are modelled as speedups over the host
    DDR4 system, so the adapter simulates the host trace (memoised) and
    scales its cycle count by the model's speedup.
    """

    def __init__(self, name, model, num_dimms, ranks_per_dimm,
                 vector_size_bytes, address_of, table_rows, timing,
                 outstanding, compare_baseline=True):
        del compare_baseline  # the baseline run is what grounds the model
        self.name = name
        self.model = model
        self.timing = timing or DDR4_2400
        self.vector_size_bytes = vector_size_bytes
        self.outstanding = outstanding
        self.address_of = _resolve_address_of(address_of, vector_size_bytes,
                                              table_rows)
        self.dram_config = DramSystemConfig(
            timing=self.timing, num_channels=1,
            dimms_per_channel=num_dimms, ranks_per_dimm=ranks_per_dimm)
        self.baseline = HostBaseline(dram_config=self.dram_config)

    def _speedup(self):
        raise NotImplementedError

    def _cycles_estimate(self, baseline_cycles):
        """The model's cycle estimate for a given host baseline."""
        raise NotImplementedError

    def run(self, requests):
        baseline = self.baseline.run_requests(
            requests, self.address_of,
            vector_bytes=self.vector_size_bytes,
            outstanding=self.outstanding)
        speedup = self._speedup()
        total_cycles = self._cycles_estimate(baseline.cycles)
        num_requests, num_lookups = _workload_size(requests)
        return SystemResult(
            system=self.name,
            total_cycles=total_cycles,
            latency_ns=total_cycles * self.timing.cycle_time_ns,
            num_requests=num_requests,
            num_lookups=num_lookups,
            baseline_cycles=baseline.cycles,
            speedup_vs_baseline=speedup,
            extras={"analytical": True},
            raw=baseline,
        )


class TensorDIMMSystem(_AnalyticalNMPSystem):
    """TensorDIMM (DIMM-level NMP, rank-interleaved vectors, no cache)."""

    def __init__(self, name="tensordimm", num_dimms=4, ranks_per_dimm=2,
                 vector_size_bytes=64, address_of=None, table_rows=100_000,
                 timing=None, outstanding=32, dimm_efficiency=1.0,
                 batch_parallel=True, compare_baseline=True):
        model = TensorDIMM(num_dimms=num_dimms,
                           ranks_per_dimm=ranks_per_dimm,
                           dimm_efficiency=dimm_efficiency)
        self.batch_parallel = batch_parallel
        super().__init__(name, model, num_dimms, ranks_per_dimm,
                         vector_size_bytes, address_of, table_rows, timing,
                         outstanding, compare_baseline)

    def _speedup(self):
        return self.model.memory_latency_speedup(
            vector_bytes=max(self.vector_size_bytes, 64),
            batch_parallel=self.batch_parallel)

    def _cycles_estimate(self, baseline_cycles):
        return self.model.cycles_estimate(
            baseline_cycles, vector_bytes=max(self.vector_size_bytes, 64),
            batch_parallel=self.batch_parallel)

    def describe(self):
        return "%s: analytical, %d DIMMs, efficiency %.2f" % (
            self.name, self.model.num_dimms, self.model.dimm_efficiency)


class ChameleonSystem(_AnalyticalNMPSystem):
    """Chameleon (CGRA in the LRDIMM data buffers, multiplexed buses)."""

    def __init__(self, name="chameleon", num_dimms=4, ranks_per_dimm=2,
                 vector_size_bytes=64, address_of=None, table_rows=100_000,
                 timing=None, outstanding=32, multiplexing_efficiency=0.7,
                 compare_baseline=True):
        model = Chameleon(num_dimms=num_dimms,
                          ranks_per_dimm=ranks_per_dimm,
                          multiplexing_efficiency=multiplexing_efficiency)
        super().__init__(name, model, num_dimms, ranks_per_dimm,
                         vector_size_bytes, address_of, table_rows, timing,
                         outstanding, compare_baseline)

    def _speedup(self):
        return self.model.memory_latency_speedup(
            vector_bytes=self.vector_size_bytes)

    def _cycles_estimate(self, baseline_cycles):
        return self.model.cycles_estimate(
            baseline_cycles, vector_bytes=self.vector_size_bytes)

    def describe(self):
        return "%s: analytical, %d DIMMs, multiplexing %.2f" % (
            self.name, self.model.num_dimms,
            self.model.multiplexing_efficiency)


def _recnmp_system_result(name, result, cycle_time_ns, num_requests,
                          num_lookups):
    """Map a :class:`RecNMPResult` onto the canonical shape."""
    return SystemResult(
        system=name,
        total_cycles=result.total_cycles,
        latency_ns=result.total_cycles * cycle_time_ns,
        num_requests=num_requests,
        num_lookups=num_lookups,
        baseline_cycles=result.baseline_cycles,
        speedup_vs_baseline=result.speedup_vs_baseline,
        energy_nj=result.energy_nj,
        baseline_energy_nj=result.baseline_energy_nj,
        energy_savings_fraction=result.energy_savings_fraction,
        cache_hit_rate=result.cache_hit_rate,
        load_imbalance=result.load_imbalance,
        extras={
            "num_packets": result.num_packets,
            "rank_load": list(result.rank_load),
        },
        raw=result,
    )


class RecNMPSystem(EmbeddingSystem):
    """One RecNMP-equipped memory channel (cycle-level simulation).

    ``backend``/``max_workers`` are accepted (and ignored) so callers can
    pass one execution-backend configuration uniformly to single- and
    multi-channel systems: a single channel has nothing to parallelise.
    """

    def __init__(self, name="recnmp-opt", address_of=None, table_rows=100_000,
                 compare_baseline=True, backend=None, max_workers=None,
                 **config_overrides):
        del backend, max_workers  # single channel: nothing to parallelise
        self.name = name
        self.compare_baseline = compare_baseline
        self.config = RecNMPConfig(**config_overrides)
        resolved = _resolve_address_of(address_of,
                                       self.config.vector_size_bytes,
                                       table_rows)
        self.simulator = RecNMPSimulator(self.config, address_of=resolved)

    def run(self, requests):
        # Each run() is independent (the legacy contract: one fresh
        # simulator per workload); reset clears channel timing, caches and
        # the packet generator so results do not depend on call order.
        self.simulator.reset()
        result = self.simulator.run_requests(
            requests, compare_baseline=self.compare_baseline)
        num_requests, num_lookups = _workload_size(requests)
        return _recnmp_system_result(
            self.name, result, self.config.timing.cycle_time_ns,
            num_requests, num_lookups)

    def reset(self):
        self.simulator.reset()

    def describe(self):
        return "%s: %s" % (self.name, self.config.label())


class MultiChannelSystem(EmbeddingSystem):
    """Software-coordinated RecNMP across several memory channels.

    ``backend`` selects how the per-channel cycle simulations execute
    (``"serial"`` / ``"thread"`` / ``"process"`` or a ready
    :class:`~repro.core.backend.ParallelBackend`); ``max_workers`` bounds
    the worker pool.  The default dense :class:`TableLayout` address map
    is a bound method of a picklable dataclass, so the process backend
    works out of the box.
    """

    def __init__(self, name="recnmp-opt-4ch", num_channels=4,
                 address_of=None, table_rows=100_000, compare_baseline=True,
                 max_workers=None, backend=None, **config_overrides):
        self.name = name
        self.compare_baseline = compare_baseline
        self.config = RecNMPConfig(**config_overrides)
        resolved = _resolve_address_of(address_of,
                                       self.config.vector_size_bytes,
                                       table_rows)
        self.coordinator = MultiChannelRecNMP(
            num_channels=num_channels, channel_config=self.config,
            address_of=resolved, max_workers=max_workers, backend=backend)

    def run(self, requests):
        self.coordinator.reset()
        result = self.coordinator.run_requests(
            requests, compare_baseline=self.compare_baseline)
        num_requests, num_lookups = _workload_size(requests)
        return SystemResult(
            system=self.name,
            total_cycles=result.total_cycles,
            latency_ns=result.total_cycles
            * self.config.timing.cycle_time_ns,
            num_requests=num_requests,
            num_lookups=num_lookups,
            baseline_cycles=result.baseline_cycles,
            speedup_vs_baseline=result.speedup_vs_baseline,
            energy_nj=result.energy_nj,
            baseline_energy_nj=result.baseline_energy_nj,
            energy_savings_fraction=(
                1.0 - result.energy_nj / result.baseline_energy_nj
                if result.baseline_energy_nj > 0 else 0.0),
            cache_hit_rate=result.cache_hit_rate,
            load_imbalance=result.channel_utilization,
            extras={
                "num_channels": result.num_channels,
                "per_channel_cycles": list(result.per_channel_cycles),
                "per_channel_instructions":
                    list(result.per_channel_instructions),
            },
            raw=result,
        )

    def reset(self):
        self.coordinator.reset()

    def close(self):
        """Release pooled backend workers (idempotent)."""
        self.coordinator.close()

    def describe(self):
        return "%s: %d channels of %s (%s backend)" % (
            self.name, self.coordinator.num_channels, self.config.label(),
            self.coordinator.backend.name)


# --------------------------------------------------------------------- #
# Built-in registrations                                                #
# --------------------------------------------------------------------- #
_RECNMP_VARIANTS = {
    "recnmp-base": dict(use_rank_cache=False, scheduling_policy="fcfs",
                        enable_hot_entry_profiling=False),
    "recnmp-cache": dict(use_rank_cache=True, scheduling_policy="fcfs",
                         enable_hot_entry_profiling=False),
    "recnmp-sched": dict(use_rank_cache=True,
                         scheduling_policy="table-aware",
                         enable_hot_entry_profiling=False),
    "recnmp-opt": dict(use_rank_cache=True, scheduling_policy="table-aware",
                       enable_hot_entry_profiling=True),
}


def register_builtin_systems():
    """(Re-)register the built-in system names."""
    register_system(
        "host", HostSystem,
        description="Host CPU over conventional DDR4 (normalisation point)")
    register_system(
        "tensordimm", TensorDIMMSystem,
        description="TensorDIMM: DIMM-level NMP, scales with DIMM count")
    register_system(
        "chameleon", ChameleonSystem,
        description="Chameleon: CGRA NDA with C/A+DQ multiplexing penalty")
    descriptions = {
        "recnmp-base": "RecNMP without RankCache (FCFS, no profiling)",
        "recnmp-cache": "RecNMP + 128 KB RankCache (FCFS, no profiling)",
        "recnmp-sched": "RecNMP + RankCache + table-aware scheduling",
        "recnmp-opt": "RecNMP with all HW/SW co-optimisations",
    }
    for variant, preset in _RECNMP_VARIANTS.items():
        register_system(variant, RecNMPSystem,
                        description=descriptions[variant], **preset)
    register_system(
        "recnmp-opt-4ch", MultiChannelSystem,
        description="4 memory channels of RecNMP-opt, software-coordinated",
        num_channels=4, **_RECNMP_VARIANTS["recnmp-opt"])


register_builtin_systems()
