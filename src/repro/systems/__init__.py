"""Unified embedding-system abstraction.

Every system the paper compares (host DDR4, TensorDIMM, Chameleon, the
RecNMP variants, multi-channel RecNMP) implements one interface --
:class:`EmbeddingSystem` with ``run(requests) -> SystemResult`` -- and is
constructed by name through the registry::

    from repro.systems import build_system

    system = build_system("recnmp-opt-4ch", vector_size_bytes=128)
    result = system.run(requests)
    print(result.speedup_vs_baseline, result.latency_us)

The comparison glue that used to be re-implemented by every benchmark lives
here once.
"""

from repro.systems.base import EmbeddingSystem, SystemResult, TableLayout
from repro.systems.registry import (
    available_systems,
    build_system,
    register_system,
    system_defaults,
    system_description,
)
from repro.systems.adapters import (
    ChameleonSystem,
    HostSystem,
    MultiChannelSystem,
    RecNMPSystem,
    TensorDIMMSystem,
    register_builtin_systems,
)

__all__ = [
    "EmbeddingSystem",
    "SystemResult",
    "TableLayout",
    "available_systems",
    "build_system",
    "register_system",
    "system_defaults",
    "system_description",
    "ChameleonSystem",
    "HostSystem",
    "MultiChannelSystem",
    "RecNMPSystem",
    "TensorDIMMSystem",
    "register_builtin_systems",
]
