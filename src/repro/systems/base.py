"""The unified embedding-system interface.

Every system the paper compares -- the host DDR4 baseline, TensorDIMM,
Chameleon, and the RecNMP variants -- answers the same question: *how fast
(and at what energy) does it execute a batch of SLS requests?*  Historically
each exposed a different ad-hoc API, so every benchmark re-implemented the
comparison glue.  :class:`EmbeddingSystem` is the single interface they all
implement now: ``run(requests)`` returns a canonical :class:`SystemResult`
that subsumes the legacy per-system result types.

This module is dependency-free within :mod:`repro` so any layer (baselines,
core, serving) can import it without cycles.
"""

import abc
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TableLayout:
    """Dense row-major placement of equally-sized embedding tables.

    The default ``address_of`` used when a system is built without an
    explicit address map: table ``t`` occupies ``num_rows * vector_bytes``
    contiguous bytes starting at ``t * num_rows * vector_bytes``.
    """

    num_rows: int = 100_000
    vector_bytes: int = 64

    def __post_init__(self):
        if self.num_rows <= 0:
            raise ValueError("num_rows must be positive")
        if self.vector_bytes <= 0 or self.vector_bytes % 64:
            raise ValueError("vector_bytes must be a positive multiple of 64")

    def address_of(self, table_id, row):
        """Physical byte address of ``(table_id, row)``."""
        return (table_id * self.num_rows + row) * self.vector_bytes


@dataclass
class SystemResult:
    """Canonical result of running one SLS workload on any embedding system.

    Subsumes the legacy ``HostBaselineResult`` / ``RecNMPResult`` /
    ``MultiChannelResult`` types: adapters map their fields onto this one
    shape so benchmarks and the serving layer can compare systems without
    per-system glue.

    Attributes
    ----------
    system:
        Registry name (or label) of the system that produced the result.
    total_cycles, latency_ns:
        Execution time of the workload in DRAM cycles and nanoseconds.
    num_requests, num_lookups:
        Workload size (SLS requests and embedding rows gathered).
    baseline_cycles, speedup_vs_baseline:
        Host-DDR4 normalisation (the paper's memory-latency speedup); for
        the host system itself the speedup is 1.0 by construction.
    energy_nj, baseline_energy_nj, energy_savings_fraction:
        Memory energy of the run and its host-baseline comparison (0.0 for
        purely analytical systems that do not model energy).
    cache_hit_rate:
        Memory-side cache hit rate (0.0 for systems without one).
    load_imbalance:
        Fraction of work on the most-loaded execution unit (rank/channel).
    extras:
        System-specific metrics that have no canonical slot.
    raw:
        The legacy result object the adapter translated, for callers that
        need the full detail.
    """

    system: str
    total_cycles: int
    latency_ns: float
    num_requests: int = 0
    num_lookups: int = 0
    baseline_cycles: int = 0
    speedup_vs_baseline: float = 0.0
    energy_nj: float = 0.0
    baseline_energy_nj: float = 0.0
    energy_savings_fraction: float = 0.0
    cache_hit_rate: float = 0.0
    load_imbalance: float = 0.0
    extras: dict = field(default_factory=dict)
    raw: object = None

    @property
    def latency_us(self):
        return self.latency_ns / 1e3

    def as_dict(self):
        """JSON-serialisable summary (drops ``raw``)."""
        return {
            "system": self.system,
            "total_cycles": self.total_cycles,
            "latency_ns": self.latency_ns,
            "num_requests": self.num_requests,
            "num_lookups": self.num_lookups,
            "baseline_cycles": self.baseline_cycles,
            "speedup_vs_baseline": self.speedup_vs_baseline,
            "energy_nj": self.energy_nj,
            "baseline_energy_nj": self.baseline_energy_nj,
            "energy_savings_fraction": self.energy_savings_fraction,
            "cache_hit_rate": self.cache_hit_rate,
            "load_imbalance": self.load_imbalance,
            "extras": dict(self.extras),
        }


class EmbeddingSystem(abc.ABC):
    """Abstract embedding-serving memory system.

    Implementations wrap one of the simulated or analytical systems and
    translate its native result into a :class:`SystemResult`.  ``run()``
    calls are independent: adapters reset per-run simulator state first, so
    results never depend on call order (the legacy contract of one fresh
    simulator per workload).  :meth:`reset` restores the post-construction
    state explicitly.
    """

    #: Registry name; instances may override per-object (e.g. with a
    #: configuration label).
    name = "embedding-system"

    @abc.abstractmethod
    def run(self, requests):
        """Execute a batch of SLS requests; returns a :class:`SystemResult`."""

    def reset(self):
        """Reset mutable state (caches, counters); default: stateless."""

    def close(self):
        """Release external resources (pooled backend workers);
        default: nothing to release.  Idempotent."""

    def __enter__(self):
        """Systems are context managers: exit calls :meth:`close`."""
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def describe(self):
        """Human-readable one-line description of the configuration."""
        return self.name

    def service_time_us(self, requests):
        """Execution time of a request batch in microseconds.

        The narrow hook the serving layer drives: it needs only the
        latency of a batch, not the full :class:`SystemResult`.  The
        default executes ``run()`` and reads the latency; systems with a
        cheaper latency-only path (analytical models, calibrated
        interpolators) may override it without touching ``run()``.
        """
        return self.run(requests).latency_ns / 1e3

    # ------------------------------------------------------------------ #
    def run_trace(self, trace, batch_size=8, pooling_factor=40,
                  max_requests=None):
        """Convenience: batch an :class:`EmbeddingTrace` and run it.

        Slices the trace into SLS requests (``batch_size`` poolings of
        ``pooling_factor`` lookups each) and executes them in one call.
        """
        from repro.traces.synthetic import batched_requests_from_trace

        requests = batched_requests_from_trace(trace, batch_size,
                                               pooling_factor)
        if max_requests is not None:
            requests = requests[:max_requests]
        if not requests:
            raise ValueError("trace too short for one %dx%d request"
                             % (batch_size, pooling_factor))
        return self.run(requests)
