"""String-keyed registry of embedding systems.

``build_system("recnmp-opt-4ch", vector_size_bytes=128)`` constructs a ready
:class:`~repro.systems.base.EmbeddingSystem`; the registry holds a factory
plus preset keyword defaults per name, and user overrides win over presets.
The built-in names are registered by :mod:`repro.systems.adapters` on
import.
"""


class _SystemSpec:
    def __init__(self, factory, defaults, description):
        self.factory = factory
        self.defaults = dict(defaults)
        self.description = description


_REGISTRY = {}


def register_system(name, factory, description="", **defaults):
    """Register ``factory`` under ``name`` with preset keyword defaults.

    Re-registering a name replaces the previous entry (useful for tests and
    for user-defined variants).  The factory is called as
    ``factory(name=name, **merged_kwargs)``.
    """
    if not name or not isinstance(name, str):
        raise ValueError("system name must be a non-empty string")
    _REGISTRY[name] = _SystemSpec(factory, defaults, description)


def build_system(name, **overrides):
    """Build a registered embedding system, applying keyword overrides."""
    try:
        spec = _REGISTRY[name]
    except KeyError:
        raise KeyError("unknown system %r; available: %s"
                       % (name, ", ".join(available_systems()))) from None
    kwargs = dict(spec.defaults)
    kwargs.update(overrides)
    return spec.factory(name=name, **kwargs)


def available_systems():
    """Sorted tuple of every registered system name."""
    return tuple(sorted(_REGISTRY))


def system_description(name):
    """The one-line description a name was registered with."""
    return _REGISTRY[name].description


def system_defaults(name):
    """Copy of the preset keyword defaults a name was registered with."""
    return dict(_REGISTRY[name].defaults)
