"""Host CPU baseline: SLS executed by the cores over the DDR4 channel.

Every embedding vector crosses the pin-limited memory interface, the cores
perform the pooling additions, and the achievable throughput is bounded by
the channel bandwidth (Section II).  The baseline can be evaluated two ways:

* trace-driven, through the cycle-level :class:`~repro.dram.system.DramSystem`
  (used when comparing against the RecNMP cycle simulator), or
* analytically, from the bandwidth-saturation model (used by the end-to-end
  and co-location studies where full traces would be prohibitively long).
"""

from dataclasses import dataclass

from repro.dram.system import DramSystemConfig
from repro.perf.bandwidth import BandwidthSaturationModel
from repro.perf.baseline_cache import run_baseline_trace


@dataclass
class HostBaselineResult:
    """Result of running an SLS workload on the host baseline."""

    cycles: int
    latency_ns: float
    bytes_moved: int
    achieved_bandwidth_gbps: float
    energy_nj: float
    row_hit_rate: float

    def as_dict(self):
        return {
            "cycles": self.cycles,
            "latency_ns": self.latency_ns,
            "bytes_moved": self.bytes_moved,
            "achieved_bandwidth_gbps": self.achieved_bandwidth_gbps,
            "energy_nj": self.energy_nj,
            "row_hit_rate": self.row_hit_rate,
        }


class HostBaseline:
    """CPU + conventional DDR4 execution of SLS workloads."""

    def __init__(self, dram_config=None, bandwidth_model=None):
        self.dram_config = dram_config or DramSystemConfig(num_channels=1)
        self.bandwidth_model = bandwidth_model or BandwidthSaturationModel()

    # ------------------------------------------------------------------ #
    def run_trace(self, physical_addresses, vector_bytes=64,
                  outstanding=32, use_cache=True):
        """Cycle-level execution of a physical-address lookup trace.

        The underlying DDR4 simulation is memoised process-wide (see
        :mod:`repro.perf.baseline_cache`); pass ``use_cache=False`` to force
        a fresh simulation.
        """
        result = run_baseline_trace(self.dram_config, physical_addresses,
                                    request_bytes=vector_bytes,
                                    outstanding_per_channel=outstanding,
                                    use_cache=use_cache)
        return HostBaselineResult(
            cycles=result.cycles,
            latency_ns=result.cycles * self.dram_config.timing.cycle_time_ns,
            bytes_moved=result.requests * 64,   # requests are 64 B bursts
            achieved_bandwidth_gbps=result.achieved_bandwidth_gbps,
            energy_nj=result.energy_nj,
            row_hit_rate=result.row_hit_rate,
        )

    def run_requests(self, requests, address_of, vector_bytes=64,
                     outstanding=32, use_cache=True):
        """Cycle-level execution of a list of SLS requests.

        Flattens the requests' embedding lookups into a physical-address
        trace via ``address_of(table_id, row)`` and runs it through
        :meth:`run_trace` -- the same trace the RecNMP simulator's baseline
        comparison uses, so the two normalisation points agree.
        """
        addresses = [address_of(request.table_id, int(row))
                     for request in requests
                     for row in request.indices]
        return self.run_trace(addresses, vector_bytes=vector_bytes,
                              outstanding=outstanding, use_cache=use_cache)

    # ------------------------------------------------------------------ #
    def analytical_sls_time_us(self, num_lookups, vector_bytes=64,
                               num_threads=30, batch_size=256):
        """Analytical SLS execution time from the saturation model."""
        if num_lookups < 0:
            raise ValueError("num_lookups must be non-negative")
        bandwidth = self.bandwidth_model.achieved_bandwidth_gbps(
            num_threads, batch_size)
        if bandwidth <= 0:
            raise ValueError("achieved bandwidth must be positive")
        return num_lookups * vector_bytes / (bandwidth * 1e9) * 1e6

    @staticmethod
    def memory_latency_speedup():
        """The baseline's speedup over itself (the normalisation point)."""
        return 1.0
