"""Chameleon baseline model (Asghari-Moghaddam et al., MICRO 2016).

Chameleon integrates CGRA-type accelerators in the data-buffer devices of an
LRDIMM.  Like TensorDIMM it is a DIMM-level design; in addition, its
near-DRAM accelerators share the conventional C/A and DQ pins through
temporal/spatial multiplexing, which costs a fraction of the achievable
bandwidth.  It has no memory-side cache, so it cannot exploit the locality
of production traces either.  The paper estimates its embedding performance
by simulating that multiplexed timing; this module reproduces the resulting
scaling behaviour analytically.
"""

from dataclasses import dataclass


@dataclass
class Chameleon:
    """Analytical memory-latency speedup model of Chameleon NDA.

    Attributes
    ----------
    num_dimms, ranks_per_dimm:
        Memory channel population (rank count does not contribute).
    multiplexing_efficiency:
        Fraction of ideal DIMM-level parallelism retained after the
        temporal/spatial multiplexing of the C/A and DQ buses between the
        host and the in-DIMM accelerators.
    num_cgra_cores:
        CGRA cores per DIMM (8 in the published design) -- used only for the
        area/power comparison in Table II.
    """

    num_dimms: int = 4
    ranks_per_dimm: int = 2
    multiplexing_efficiency: float = 0.7
    num_cgra_cores: int = 8

    def __post_init__(self):
        if self.num_dimms <= 0 or self.ranks_per_dimm <= 0:
            raise ValueError("num_dimms and ranks_per_dimm must be positive")
        if not 0 < self.multiplexing_efficiency <= 1:
            raise ValueError("multiplexing_efficiency must be in (0, 1]")
        if self.num_cgra_cores <= 0:
            raise ValueError("num_cgra_cores must be positive")

    def memory_latency_speedup(self, vector_bytes=64, trace_kind="random"):
        """Memory-latency speedup over the host baseline.

        Locality (``trace_kind``) has no effect: Chameleon has no memory-
        side cache.  Vector size has no first-order effect either because
        the accelerators sit at the DIMM data buffers and see whole bursts.
        """
        del vector_bytes, trace_kind
        return self.num_dimms * self.multiplexing_efficiency

    def cycles_estimate(self, baseline_cycles, vector_bytes=64,
                        trace_kind="random"):
        """Estimated execution cycles given the host baseline's cycles."""
        if baseline_cycles < 0:
            raise ValueError("baseline_cycles must be non-negative")
        speedup = self.memory_latency_speedup(vector_bytes=vector_bytes,
                                              trace_kind=trace_kind)
        return int(round(baseline_cycles / speedup))

    def speedup_by_config(self, configs):
        """Speedups over several (num_dimms x ranks_per_dimm) configs."""
        results = {}
        for num_dimms, ranks_per_dimm in configs:
            model = Chameleon(
                num_dimms=num_dimms, ranks_per_dimm=ranks_per_dimm,
                multiplexing_efficiency=self.multiplexing_efficiency)
            label = "%dx%d" % (num_dimms, ranks_per_dimm)
            results[label] = model.memory_latency_speedup()
        return results
