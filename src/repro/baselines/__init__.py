"""Baseline systems RecNMP is compared against (Fig. 16).

* :class:`HostBaseline` -- the CPU reading every embedding vector over the
  conventional DDR4 channel (the normalisation point of every figure).
* :class:`TensorDIMM` -- DIMM-level NMP that interleaves consecutive 64 B
  blocks of a vector across DIMMs; scales with DIMM count only and has no
  memory-side cache.
* :class:`Chameleon` -- CGRA accelerators in the LRDIMM data buffers; also
  DIMM-level, with additional C/A and DQ multiplexing overheads.
"""

from repro.baselines.host import HostBaseline, HostBaselineResult
from repro.baselines.tensordimm import TensorDIMM
from repro.baselines.chameleon import Chameleon

__all__ = [
    "HostBaseline",
    "HostBaselineResult",
    "TensorDIMM",
    "Chameleon",
]
