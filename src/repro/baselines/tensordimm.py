"""TensorDIMM baseline model (Kwon et al., MICRO 2019).

TensorDIMM places NMP cores in custom DIMMs and interleaves consecutive
64 B blocks of each embedding vector across the DIMMs of a channel.  Its
embedding-operation performance therefore scales with the *DIMM count* and
relies on vectors being large enough to span all DIMMs; it has no memory-
side cache, so production-trace locality does not help it.  These are the
properties the Fig. 16 comparison exercises.
"""

from dataclasses import dataclass


@dataclass
class TensorDIMM:
    """Analytical memory-latency speedup model of TensorDIMM.

    Attributes
    ----------
    num_dimms, ranks_per_dimm:
        Memory channel population (ranks are listed for interface parity
        with RecNMP but do not contribute to TensorDIMM's scaling).
    dimm_efficiency:
        Fraction of the ideal DIMM-level parallelism realised (scheduling
        and reduction overheads).
    """

    num_dimms: int = 4
    ranks_per_dimm: int = 2
    dimm_efficiency: float = 1.0

    def __post_init__(self):
        if self.num_dimms <= 0 or self.ranks_per_dimm <= 0:
            raise ValueError("num_dimms and ranks_per_dimm must be positive")
        if not 0 < self.dimm_efficiency <= 1:
            raise ValueError("dimm_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------ #
    def effective_parallelism(self, vector_bytes=256):
        """DIMMs that can work on one vector concurrently.

        The rank-interleaved layout splits a vector into 64 B blocks across
        DIMMs, so a vector only spans ``min(num_dimms, vector_bytes / 64)``
        DIMMs -- the reason TensorDIMM cannot accelerate small (64 B)
        vectors, as the paper points out.
        """
        if vector_bytes <= 0 or vector_bytes % 64:
            raise ValueError("vector_bytes must be a positive multiple of 64")
        return min(self.num_dimms, vector_bytes // 64)

    def memory_latency_speedup(self, vector_bytes=256, trace_kind="random",
                               batch_parallel=True):
        """Memory-latency speedup over the host baseline.

        ``trace_kind`` is accepted for interface parity with RecNMP but has
        no effect: without a memory-side cache TensorDIMM is agnostic to
        locality.  With ``batch_parallel`` the independent poolings of a
        batch keep all DIMMs busy even when a single vector does not span
        them, which recovers DIMM-level scaling (the configuration the
        paper's comparison assumes); without it the per-vector limit of
        :meth:`effective_parallelism` applies.
        """
        del trace_kind
        if batch_parallel:
            parallelism = self.num_dimms
        else:
            parallelism = self.effective_parallelism(vector_bytes)
        return parallelism * self.dimm_efficiency

    def cycles_estimate(self, baseline_cycles, vector_bytes=256,
                        trace_kind="random", batch_parallel=True):
        """Estimated execution cycles given the host baseline's cycles.

        The analytical model expresses TensorDIMM as a speedup over the host
        DDR4 system; scaling the simulated baseline cycle count by it yields
        the cycle estimate the unified system interface reports.
        """
        if baseline_cycles < 0:
            raise ValueError("baseline_cycles must be non-negative")
        speedup = self.memory_latency_speedup(vector_bytes=vector_bytes,
                                              trace_kind=trace_kind,
                                              batch_parallel=batch_parallel)
        return int(round(baseline_cycles / speedup))

    def speedup_by_config(self, configs, vector_bytes=256):
        """Speedups over several (num_dimms x ranks_per_dimm) configs."""
        results = {}
        for num_dimms, ranks_per_dimm in configs:
            model = TensorDIMM(num_dimms=num_dimms,
                               ranks_per_dimm=ranks_per_dimm,
                               dimm_efficiency=self.dimm_efficiency)
            label = "%dx%d" % (num_dimms, ranks_per_dimm)
            results[label] = model.memory_latency_speedup(vector_bytes)
        return results
