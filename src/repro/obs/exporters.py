"""Exporters: Chrome trace-event JSON, metrics JSON, terminal tables.

Three ways out of the observability layer:

* :func:`write_chrome_trace` -- the reconstructed timeline as Chrome
  trace-event JSON (the ``traceEvents`` format), loadable in Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``.  Batches render as
  complete ("X") slices on one track per dispatch frontend, queries as
  async begin/end ("b"/"e") stage spans, the dispatch-queue depth and
  per-node activity as counter ("C") tracks, shed queries as instants.
* :func:`write_metrics_json` -- a :class:`~repro.obs.metrics
  .MetricsRegistry` snapshot as JSON, the input of ``python -m repro
  report``.
* :func:`format_metrics_table` / :func:`format_trace_summary` --
  plain-text tables for terminals; they *return* strings (library code
  never prints -- the ``obs-hygiene`` lint rule enforces exactly that).

Traces can be huge -- a million queries would emit six million span
events -- so :func:`chrome_trace` caps per-query span emission at
``max_query_spans`` (default below), keeps *all* batch and counter
events, and records the truncation in the trace metadata.  Validation
against the checked-in ``trace_schema.json`` uses the small JSON-schema
subset interpreter in :func:`validate_json` (no external dependency).
"""

import json
from pathlib import Path

import numpy as np

from repro.obs.tracing import QUERY_STAGES

#: Default cap on per-query async span emission (3 events-pairs each);
#: batch slices and counter series are never capped.
DEFAULT_MAX_QUERY_SPANS = 20_000

#: Synthetic pids grouping the trace rows in the viewer.
_PID_FRONTENDS = 1
_PID_QUERIES = 2
_PID_CLUSTER = 3


# --------------------------------------------------------------------- #
# Chrome trace-event export                                             #
# --------------------------------------------------------------------- #
def chrome_trace(tracer, max_query_spans=DEFAULT_MAX_QUERY_SPANS):
    """The tracer's timeline as a Chrome trace-event JSON object.

    Timestamps are simulated microseconds, which is natively the Chrome
    ``ts`` unit -- the Perfetto timeline reads directly in sim time.
    """
    capture = tracer.capture
    if capture is None:
        raise ValueError("tracer holds no run; simulate with trace= "
                         "before exporting")
    events = []
    events.append(_meta(_PID_FRONTENDS, "process_name",
                        {"name": "dispatch frontends"}))
    events.append(_meta(_PID_QUERIES, "process_name",
                        {"name": "queries"}))
    events.append(_meta(_PID_CLUSTER, "process_name",
                        {"name": "cluster"}))
    lanes = tracer.frontend_assignments()
    for lane in range(capture.num_servers):
        events.append(_meta(_PID_FRONTENDS, "thread_name",
                            {"name": "frontend %d" % lane}, tid=lane))
    waits = capture.batch_start_us - capture.batch_ready_us
    for index in range(capture.num_batches):
        args = {"size": int(capture.batch_sizes[index]),
                "trigger": capture.batch_triggers[index],
                "queue_wait_us": float(waits[index])}
        if tracer.batch_nodes is not None:
            args["nodes"] = list(tracer.batch_nodes[index])
        events.append({
            "name": "batch %d" % index,
            "cat": "batch",
            "ph": "X",
            "pid": _PID_FRONTENDS,
            "tid": int(lanes[index]),
            "ts": float(capture.batch_start_us[index]),
            "dur": float(capture.batch_service_us[index]),
            "args": args,
        })
    # Dispatch-queue depth counter.
    depth_times, depths = tracer.queue_depth_series()
    for time_us, depth in zip(depth_times, depths):
        events.append({
            "name": "queue_depth",
            "cat": "queue",
            "ph": "C",
            "pid": _PID_CLUSTER,
            "tid": 0,
            "ts": float(time_us),
            "args": {"waiting_batches": int(depth)},
        })
    # Per-node activity counters from the routing replay.
    if tracer.batch_nodes is not None:
        events.extend(_node_activity_events(tracer, capture))
    # Per-query lifecycle spans (async, possibly capped).
    spans = tracer.query_spans()
    num_spans = capture.num_queries if max_query_spans is None \
        else min(capture.num_queries, int(max_query_spans))
    stage_edges = ("arrival_us", "formed_us", "start_us", "complete_us")
    for position in range(num_spans):
        span_id = "q%d" % int(spans["query_id"][position])
        for stage, begin_key, end_key in zip(QUERY_STAGES, stage_edges,
                                             stage_edges[1:]):
            for phase, key in (("b", begin_key), ("e", end_key)):
                events.append({
                    "name": stage,
                    "cat": "query",
                    "ph": phase,
                    "id": span_id,
                    "pid": _PID_QUERIES,
                    "tid": 0,
                    "ts": float(spans[key][position]),
                })
    for query_id, arrival in zip(tracer.shed_query_id,
                                 tracer.shed_arrival_us):
        events.append({
            "name": "shed q%d" % int(query_id),
            "cat": "admission",
            "ph": "i",
            "pid": _PID_QUERIES,
            "tid": 0,
            "ts": float(arrival),
            "s": "p",
        })
    metadata = dict(tracer.run_info)
    metadata.update({
        "engine": capture.engine,
        "approximate_timeline": capture.approximate,
        "num_queries": capture.num_queries,
        "num_batches": capture.num_batches,
        "query_spans_emitted": num_spans,
        "query_spans_truncated": num_spans < capture.num_queries,
        "query_spans_dropped": capture.num_queries - num_spans,
        "time_unit": "simulated microseconds",
    })
    if tracer.label is not None:
        metadata["label"] = tracer.label
    return {"traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": metadata}


def _meta(pid, name, args, tid=0):
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "args": args}


def _node_activity_events(tracer, capture):
    """Counter track per node: batches in flight on that node."""
    events = []
    for node in range(tracer.num_nodes):
        starts = np.asarray(
            [capture.batch_start_us[index]
             for index, nodes in enumerate(tracer.batch_nodes)
             if node in nodes], dtype=np.float64)
        completes = np.asarray(
            [capture.batch_complete_us[index]
             for index, nodes in enumerate(tracer.batch_nodes)
             if node in nodes], dtype=np.float64)
        times = np.concatenate([completes, starts])
        deltas = np.concatenate(
            [np.full(completes.size, -1, dtype=np.int64),
             np.ones(starts.size, dtype=np.int64)])
        order = np.argsort(times, kind="stable")
        active = np.cumsum(deltas[order])
        for time_us, count in zip(times[order], active):
            events.append({
                "name": "node%d_active_batches" % node,
                "cat": "nodes",
                "ph": "C",
                "pid": _PID_CLUSTER,
                "tid": 0,
                "ts": float(time_us),
                "args": {"batches": int(count)},
            })
    return events


def write_chrome_trace(tracer, path,
                       max_query_spans=DEFAULT_MAX_QUERY_SPANS):
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    trace = chrome_trace(tracer, max_query_spans=max_query_spans)
    path = Path(path)
    with path.open("w") as handle:
        json.dump(trace, handle, allow_nan=False)
    return path


# --------------------------------------------------------------------- #
# Metrics JSON + terminal tables                                        #
# --------------------------------------------------------------------- #
def write_metrics_json(registry_or_snapshot, path):
    """Write a metrics snapshot as indented JSON; returns the path."""
    snapshot = registry_or_snapshot
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    path = Path(path)
    with path.open("w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_metrics_table(snapshot):
    """A metrics snapshot as an aligned plain-text table (one string).

    The renderer behind ``python -m repro report``: counters and gauges
    one line each, histograms as count/mean/p50/p99/max rows, collected
    component stats as ``name.key = value`` lines.
    """
    lines = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    collected = snapshot.get("collected", {})
    scalar_rows = [(name, "%d" % value)
                   for name, value in sorted(counters.items())]
    scalar_rows += [(name, "%.6g" % value)
                    for name, value in sorted(gauges.items())]
    for group, stats in sorted(collected.items()):
        scalar_rows += [("%s.%s" % (group, key), "%.6g" % value
                         if isinstance(value, float) else str(value))
                        for key, value in sorted(stats.items())]
    if scalar_rows:
        width = max(len(name) for name, _ in scalar_rows)
        lines.append("-- counters / gauges / collected --")
        lines += ["%-*s  %s" % (width, name, value)
                  for name, value in scalar_rows]
    if histograms:
        lines.append("-- histograms --")
        header = "%-36s %10s %12s %12s %12s %12s" % (
            "name", "count", "mean", "p50", "p99", "max")
        lines.append(header)
        for name, stats in sorted(histograms.items()):
            lines.append("%-36s %10d %12.4g %12.4g %12.4g %12.4g" % (
                name, stats["count"], stats["mean"], stats["p50"],
                stats["p99"], stats["max"] if stats["max"] is not None
                else float("nan")))
    if not lines:
        lines.append("(empty metrics snapshot)")
    return "\n".join(lines)


def format_trace_summary(summary):
    """A tracer summary as a plain-text stage-attribution table."""
    lines = ["%s: %d queries, %d batches over %d frontend(s) [%s]"
             % (summary.get("label") or "trace", summary["num_queries"],
                summary["num_batches"], summary["num_servers"],
                summary["engine"])]
    lines.append("%-10s %12s %12s %12s %12s" % (
        "stage", "mean_us", "p50_us", "p99_us", "max_us"))
    for stage in QUERY_STAGES:
        stats = summary["stages"][stage]
        lines.append("%-10s %12.2f %12.2f %12.2f %12.2f" % (
            stage, stats["mean_us"], stats["p50_us"], stats["p99_us"],
            stats["max_us"]))
    if "max_queue_depth" in summary:
        lines.append("max queue depth: %d" % summary["max_queue_depth"])
    if summary["num_shed"]:
        lines.append("shed queries: %d" % summary["num_shed"])
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Schema validation (dependency-free JSON-schema subset)                #
# --------------------------------------------------------------------- #
_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "number": lambda value: isinstance(value, (int, float))
    and not isinstance(value, bool),
    "integer": lambda value: isinstance(value, int)
    and not isinstance(value, bool),
    "boolean": lambda value: isinstance(value, bool),
}


def validate_json(instance, schema, path="$"):
    """Validate ``instance`` against a JSON-schema *subset*.

    Supported keywords: ``type`` (scalar or list), ``required``,
    ``properties``, ``items``, ``enum``, ``anyOf``.  Raises
    ``ValueError`` naming the offending path -- enough schema to pin
    the trace format without a jsonschema dependency.
    """
    any_of = schema.get("anyOf")
    if any_of is not None:
        errors = []
        for option in any_of:
            try:
                validate_json(instance, option, path)
                return
            except ValueError as error:
                errors.append(str(error))
        raise ValueError("%s: no anyOf branch matched (%s)"
                         % (path, "; ".join(errors)))
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[kind](instance) for kind in allowed):
            raise ValueError("%s: expected %s, got %s"
                             % (path, "/".join(allowed),
                                type(instance).__name__))
    enum = schema.get("enum")
    if enum is not None and instance not in enum:
        raise ValueError("%s: %r not one of %s" % (path, instance, enum))
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise ValueError("%s: missing required key %r"
                                 % (path, key))
        properties = schema.get("properties", {})
        for key in sorted(properties):
            if key in instance:
                validate_json(instance[key], properties[key],
                              "%s.%s" % (path, key))
    if isinstance(instance, list):
        items = schema.get("items")
        if items is not None:
            for index, element in enumerate(instance):
                validate_json(element, items, "%s[%d]" % (path, index))


def load_trace_schema():
    """The checked-in Chrome-trace schema (``trace_schema.json``)."""
    schema_path = Path(__file__).with_name("trace_schema.json")
    with schema_path.open() as handle:
        return json.load(handle)


def validate_chrome_trace(trace):
    """Validate a :func:`chrome_trace` object against the schema."""
    validate_json(trace, load_trace_schema())
    return True
