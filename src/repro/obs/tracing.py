"""Sim-time tracer: lifecycle spans and time series from captured runs.

One :class:`Tracer` holds one serving run, reconstructed post hoc from
the :class:`~repro.obs.capture.RunCapture` the engine filled: per-query
lifecycle spans (arrival -> batch formation -> dispatch-queue start ->
completion), the dispatch-queue depth as a sim-time step series, and --
when the cluster replayed routing -- per-node batch activity and
utilisation.  Nothing here runs inside a simulation loop; a tracer is a
pure function of kernel *output* arrays, so tracing cannot perturb
bit-identity.

Span arithmetic note: the three stage durations sum to the reported
latency up to float association only --
``(formed - arrival) + (start - formed) + (complete - start)`` need not
be bitwise ``complete - arrival`` -- so reconciliation checks compare
with a tolerance, never ``==``.

All times are simulated microseconds, which is also the Chrome
trace-event unit; see :mod:`repro.obs.exporters` for the Perfetto
export.
"""

import numpy as np

#: Lifecycle stages of one query, in timeline order.
QUERY_STAGES = ("batching", "queue", "service")


class Tracer:
    """Collects one run's reconstructed timeline.

    Pass a fresh instance to ``ShardedServingCluster.simulate(...,
    trace=tracer)``; afterwards the tracer answers span and series
    queries and feeds the exporters.  A tracer is single-use -- one run,
    one timeline -- so sweeps trace one point per tracer.
    """

    def __init__(self, label=None):
        self.label = label
        self.capture = None
        self.run_info = {}
        self.shed_query_id = np.empty(0, dtype=np.int64)
        self.shed_arrival_us = np.empty(0, dtype=np.float64)
        #: Per-batch tuples of node ids the batch's shards landed on
        #: (``None`` until the cluster replays routing).
        self.batch_nodes = None
        self.num_nodes = None

    # ------------------------------------------------------------------ #
    # Filled by the cluster                                              #
    # ------------------------------------------------------------------ #
    def record_run(self, capture, run_info=None):
        if self.capture is not None:
            raise ValueError("Tracer already holds a run; use a fresh "
                             "Tracer per simulate call")
        if not capture.filled:
            raise ValueError("capture was never filled by an engine")
        self.capture = capture
        self.run_info = dict(run_info or {})

    def record_shed(self, query_id, arrival_us):
        """Record queries the admission controller turned away."""
        self.shed_query_id = np.asarray(query_id, dtype=np.int64)
        self.shed_arrival_us = np.asarray(arrival_us, dtype=np.float64)
        if self.shed_query_id.shape != self.shed_arrival_us.shape:
            raise ValueError("shed ids and arrivals must align")

    def record_assignments(self, batch_nodes, num_nodes):
        """Record the replayed per-batch node fan-out."""
        batch_nodes = [tuple(sorted(set(int(node) for node in nodes)))
                       for nodes in batch_nodes]
        if self.capture is not None \
                and len(batch_nodes) != self.capture.num_batches:
            raise ValueError("need one node set per batch")
        self.batch_nodes = batch_nodes
        self.num_nodes = int(num_nodes)

    # ------------------------------------------------------------------ #
    # Reconstructed views                                                #
    # ------------------------------------------------------------------ #
    def _require_run(self):
        if self.capture is None:
            raise ValueError("Tracer holds no run yet; pass it to "
                             "simulate(trace=...) first")
        return self.capture

    def query_spans(self):
        """Per-query lifecycle timestamps as aligned arrays.

        Returns a dict of query-indexed arrays: ``query_id``,
        ``arrival_us``, ``formed_us`` (batch formation = batching ends),
        ``start_us`` (dispatch-queue service begins), ``complete_us``,
        ``latency_us`` (the engine's reported per-query latency),
        ``deadline_us`` (NaN = none) and ``batch_index``.
        """
        capture = self._require_run()
        return {
            "query_id": capture.query_id,
            "arrival_us": capture.query_arrival_us,
            "formed_us": capture.per_query(capture.batch_ready_us),
            "start_us": capture.per_query(capture.batch_start_us),
            "complete_us": capture.per_query(capture.batch_complete_us),
            "latency_us": capture.query_latency_us,
            "deadline_us": capture.query_deadline_us,
            "batch_index": capture.query_batch_index(),
        }

    def span_durations_us(self):
        """Per-stage durations, query-indexed: the p99 attribution view.

        ``batching`` is time in the forming batch, ``queue`` time
        waiting for a frontend, ``service`` the batch execution.  Sums
        reconcile with ``latency_us`` up to float association.
        """
        spans = self.query_spans()
        return {
            "batching": spans["formed_us"] - spans["arrival_us"],
            "queue": spans["start_us"] - spans["formed_us"],
            "service": spans["complete_us"] - spans["start_us"],
        }

    def queue_depth_series(self):
        """Dispatch-queue depth as a step series ``(times_us, depth)``.

        A batch occupies the waiting queue from ready to start.  Events
        at the same instant are collapsed to one sample -- the depth
        after *all* of them -- matching the engines' tie rule that
        departures at ``t`` precede arrivals at ``t`` (a batch that
        starts the moment it forms never counts), so the series stays
        non-negative and its peak equals the reported
        ``max_queue_depth``.
        """
        capture = self._require_run()
        ready = capture.batch_ready_us
        starts = capture.batch_start_us
        times = np.concatenate([starts, ready])
        deltas = np.concatenate([np.full(starts.size, -1, dtype=np.int64),
                                 np.ones(ready.size, dtype=np.int64)])
        if times.size == 0:
            return times, deltas
        order = np.argsort(times, kind="stable")
        times = times[order]
        depth = np.cumsum(deltas[order])
        # Keep only the last event per distinct timestamp: intermediate
        # cumsum values inside a tie group are artefacts of event order,
        # not depths the queue ever exposed.
        keep = np.empty(times.size, dtype=bool)
        keep[:-1] = times[1:] != times[:-1]
        keep[-1] = True
        return times[keep], depth[keep]

    def frontend_assignments(self):
        """Greedy replay of which frontend served each batch.

        The queue kernels track only *when* each batch starts, not on
        which of the ``c`` identical servers; serving batches in start
        order on the earliest-free lane reproduces a consistent
        schedule (exact for FIFO and EDF, where a freed server takes
        the next started batch).  Returns a batch-indexed int64 array.
        """
        import heapq

        capture = self._require_run()
        lanes = [(-np.inf, lane) for lane in range(capture.num_servers)]
        heapq.heapify(lanes)
        assignment = np.empty(capture.num_batches, dtype=np.int64)
        for index in np.argsort(capture.batch_start_us, kind="stable"):
            _, lane = heapq.heappop(lanes)
            assignment[index] = lane
            heapq.heappush(lanes,
                           (float(capture.batch_complete_us[index]), lane))
        return assignment

    def node_busy_us(self):
        """Per-node busy time: sum of service of batches touching it.

        Needs the cluster's routing replay
        (:meth:`record_assignments`).  Every node a batch fans out to is
        charged the *whole* batch service time -- the batch completes
        with its slowest shard, so this is the occupancy upper bound the
        dispatch layer sees, not per-shard device time.
        """
        capture = self._require_run()
        if self.batch_nodes is None:
            raise ValueError("no routing replay recorded; simulate with "
                             "trace= on a cluster to populate it")
        busy = np.zeros(self.num_nodes, dtype=np.float64)
        for index, nodes in enumerate(self.batch_nodes):
            for node in nodes:
                busy[node] += capture.batch_service_us[index]
        return busy

    def node_utilization(self):
        """Per-node busy fraction over the run's active span."""
        capture = self._require_run()
        span = float(capture.batch_complete_us.max()
                     - capture.batch_ready_us.min())
        span = max(span, 1e-9)
        return self.node_busy_us() / span

    def node_batch_counts(self):
        """Batches each node participated in (routing-replay view)."""
        capture = self._require_run()
        if self.batch_nodes is None:
            raise ValueError("no routing replay recorded; simulate with "
                             "trace= on a cluster to populate it")
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        for nodes in self.batch_nodes:
            for node in nodes:
                counts[node] += 1
        return counts

    # ------------------------------------------------------------------ #
    def summary(self):
        """JSON-safe run summary: the terminal-table data source."""
        capture = self._require_run()
        durations = self.span_durations_us()
        stages = {}
        for stage in QUERY_STAGES:
            values = durations[stage]
            stages[stage] = {
                "mean_us": float(values.mean()),
                "p50_us": float(np.percentile(values, 50.0)),
                "p99_us": float(np.percentile(values, 99.0)),
                "max_us": float(values.max()),
            }
        summary = {
            "label": self.label,
            "engine": capture.engine,
            "approximate": capture.approximate,
            "num_queries": capture.num_queries,
            "num_batches": capture.num_batches,
            "num_shed": int(self.shed_query_id.size),
            "num_servers": capture.num_servers,
            "stages": stages,
            "run_info": dict(self.run_info),
        }
        if capture.max_queue_depth is not None:
            summary["max_queue_depth"] = capture.max_queue_depth
        if capture.measured_utilization is not None:
            summary["measured_utilization"] = capture.measured_utilization
        if self.batch_nodes is not None:
            summary["node_busy_fraction"] = [
                float(value) for value in self.node_utilization()]
            summary["node_batches"] = [
                int(value) for value in self.node_batch_counts()]
        return summary

    # ------------------------------------------------------------------ #
    def write_chrome_trace(self, path, max_query_spans=None):
        """Write the Perfetto-loadable Chrome trace JSON to ``path``."""
        from repro.obs.exporters import write_chrome_trace

        return write_chrome_trace(self, path,
                                  max_query_spans=max_query_spans)
