"""Metric primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the one place a serving stack publishes
numbers into: the cluster's simulation counters, per-run latency
histograms, and *collectors* -- callables polled at snapshot time that
pull stats out of components owning their own accounting (the
service-time LRU, the sqlite store).  Collectors are the
zero-hot-path-overhead half of the design: nothing in a simulation loop
ever formats or copies a stat dict; :meth:`MetricsRegistry.snapshot`
does all the reading when somebody actually asks.

Everything here is simulation-deterministic: metric values derive only
from simulated quantities (no wall clock -- host-side timing lives in
:mod:`repro.obs.profiling`), and snapshots iterate names in sorted
order so two identical runs serialise byte-identical JSON.
"""

import math

import numpy as np

#: Default histogram buckets: 4 per decade from 1 us to 10 s, a span
#: that covers batching delays through saturated-queue latencies.
DEFAULT_LATENCY_BUCKETS_US = tuple(
    round(10.0 ** (exponent / 4.0), 6)
    for exponent in range(0, 29))


class Counter:
    """A monotonically increasing count (queries served, batches formed)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self._value = 0

    @property
    def value(self):
        return self._value

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for "
                             "values that fall")
        self._value += amount

    def reset(self):
        self._value = 0


class Gauge:
    """A point-in-time value (last run's utilisation, max queue depth)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self):
        return self._value

    def set(self, value):
        self._value = float(value)

    def reset(self):
        self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with O(1) memory at any sample count.

    ``buckets`` are ascending upper bounds; an implicit +inf bucket
    catches the overflow.  :meth:`observe_many` bins a whole numpy
    vector in one ``searchsorted`` pass -- the engines hand over their
    per-query latency arrays directly.  :meth:`quantile` interpolates
    linearly inside the winning bucket, which is an *estimate*: exact
    percentiles stay in the :class:`ServingReport`; the histogram is for
    cross-run aggregation and the metrics snapshot.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_min", "_max")

    def __init__(self, name, buckets=DEFAULT_LATENCY_BUCKETS_US, help=""):
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value):
        self.observe_many([value])

    def observe_many(self, values):
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            return
        if not np.all(np.isfinite(array)):
            raise ValueError("histogram %s observed a non-finite value"
                             % self.name)
        indices = np.searchsorted(self.buckets, array, side="left")
        self._counts += np.bincount(indices,
                                    minlength=self._counts.size)
        self._sum += float(array.sum())
        self._count += int(array.size)
        self._min = min(self._min, float(array.min()))
        self._max = max(self._max, float(array.max()))

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    @property
    def mean(self):
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q):
        """Estimated ``q``-quantile (0..1) by in-bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._count:
            return 0.0
        target = q * self._count
        cumulative = 0
        lower = 0.0 if self._min > 0.0 else self._min
        for index, count in enumerate(self._counts):
            if not count:
                continue
            upper = self.buckets[index] if index < len(self.buckets) \
                else self._max
            upper = min(upper, self._max)
            lower = max(lower, self._min) if cumulative == 0 else lower
            if cumulative + count >= target:
                fraction = (target - cumulative) / count
                return float(lower + fraction * (upper - lower))
            cumulative += count
            lower = upper
        return float(self._max)

    def reset(self):
        self._counts[:] = 0
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def snapshot(self):
        """JSON-safe summary of the distribution."""
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": [list(pair) for pair in
                        zip(self.buckets,
                            self._counts[:-1].tolist())],
            "overflow": int(self._counts[-1]),
        }


def observe_finite(histogram, values):
    """Observe only the finite entries of ``values``.

    The analytic engine reports infinite waits/latencies for unstable
    queues; histograms stay finite, so publishers route sample vectors
    through this filter instead of crashing an over-offered run.
    """
    array = np.asarray(values, dtype=np.float64)
    finite = array[np.isfinite(array)]
    histogram.observe_many(finite)


class MetricsRegistry:
    """Named metrics plus snapshot-time collectors.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same object (and a different
    metric kind under an existing name is an error), so publishers can
    cache the returned handle and pay one attribute call per update.
    """

    def __init__(self):
        self._metrics = {}
        self._collectors = {}

    # ------------------------------------------------------------------ #
    def _get_or_create(self, kind, name, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    "metric %r is a %s, not a %s"
                    % (name, type(existing).__name__, kind.__name__))
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name, help=""):
        return self._get_or_create(Counter, name,
                                   lambda: Counter(name, help))

    def gauge(self, name, help=""):
        return self._get_or_create(Gauge, name, lambda: Gauge(name, help))

    def histogram(self, name, buckets=DEFAULT_LATENCY_BUCKETS_US, help=""):
        return self._get_or_create(
            Histogram, name, lambda: Histogram(name, buckets, help))

    def register_collector(self, name, collect):
        """Register ``collect() -> dict`` polled at snapshot time.

        The lazy half of the registry: components that already keep
        their own counters (the service-time LRU, the sqlite store)
        expose them through a collector instead of double-counting on
        the hot path.  Re-registering a name replaces the collector.
        """
        if not callable(collect):
            raise ValueError("collector %r must be callable" % name)
        self._collectors[name] = collect

    # ------------------------------------------------------------------ #
    def get(self, name):
        """The metric registered under ``name`` (KeyError when absent)."""
        return self._metrics[name]

    def names(self):
        """Sorted names of the registered metrics."""
        return sorted(self._metrics)

    def snapshot(self):
        """One JSON-safe dict of everything: the metrics export format.

        ``counters`` / ``gauges`` / ``histograms`` map sorted metric
        names to values; ``collected`` holds each collector's dict.
        ``python -m repro report`` pretty-prints exactly this shape.
        """
        counters, gauges, histograms = {}, {}, {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot()
        collected = {name: dict(self._collectors[name]())
                     for name in sorted(self._collectors)}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms, "collected": collected}

    def reset(self):
        """Zero every counter, gauge and histogram (collectors stay)."""
        for name in sorted(self._metrics):
            self._metrics[name].reset()
