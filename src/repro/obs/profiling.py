"""Host-side stage timers: wall-clock profiling of the simulator itself.

Everything else in :mod:`repro.obs` measures *simulated* time; this
module measures how long the *simulator* takes on the host -- sweep
point runtimes, query-generation cost, benchmark stage breakdowns.  It
is the **only** file under ``repro/obs`` allowed to read the wall clock
(the ``determinism`` lint rule enforces that scoping), and nothing in
it may ever feed a simulated quantity: stage timings are reporting
output, never simulation input.

Usage::

    profiler = StageProfiler()
    with profiler.stage("generate"):
        queries = make_queries(qps)
    with profiler.stage("simulate"):
        report = cluster.simulate(queries)
    print(format_stage_table(profiler.totals()))   # caller prints
"""

import time
from contextlib import contextmanager


class StageProfiler:
    """Accumulating named wall-clock stage timers.

    Re-entering a stage accumulates (total seconds, call count), so one
    profiler spans a whole sweep: per-point ``simulate`` stages fold
    into one row.  Purely host-side: no simulated quantity may ever be
    derived from these numbers.
    """

    def __init__(self):
        self._stages = {}

    @contextmanager
    def stage(self, name):
        """Context manager timing one stage occurrence."""
        began = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - began)

    def add(self, name, seconds):
        """Fold an externally measured duration into a stage."""
        total, count = self._stages.get(name, (0.0, 0))
        self._stages[name] = (total + float(seconds), count + 1)

    def totals(self):
        """``{stage: {"seconds": ..., "count": ...}}`` sorted by name."""
        return {name: {"seconds": total, "count": count}
                for name, (total, count) in sorted(self._stages.items())}

    def seconds(self, name):
        """Total seconds of one stage (0.0 when never entered)."""
        return self._stages.get(name, (0.0, 0))[0]


def format_stage_table(totals):
    """A :meth:`StageProfiler.totals` dict as an aligned table string."""
    if not totals:
        return "(no stages timed)"
    width = max(len(name) for name in totals)
    lines = ["%-*s %10s %8s %12s"
             % (width, "stage", "seconds", "count", "sec/call")]
    for name, stats in sorted(totals.items()):
        per_call = stats["seconds"] / stats["count"] if stats["count"] \
            else 0.0
        lines.append("%-*s %10.3f %8d %12.6f"
                     % (width, name, stats["seconds"], stats["count"],
                        per_call))
    return "\n".join(lines)
