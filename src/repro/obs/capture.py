"""Raw per-run arrays the serving engines deposit for reconstruction.

The observability layer never reaches *into* a queue simulation -- the
flat event kernels are jitted loops with no callback surface, and the
bit-identity contract forbids perturbing them.  Instead an engine that
was handed a :class:`RunCapture` fills it *after* the queue maths from
arrays it already computed (ready/start/complete/service per batch,
arrival/latency per query), and the :class:`~repro.obs.tracing.Tracer`
reconstructs lifecycle spans and time series from those arrays post
hoc.  When no capture is requested the engines skip one ``if`` -- the
zero-overhead-when-disabled half of the contract.
"""

import numpy as np

#: Batch trigger codes, matching ``BatchColumns.triggers``.
TRIGGER_NAMES = ("size", "deadline")


class RunCapture:
    """Per-run arrays of one ``summarize`` call.

    Batch-indexed arrays (``batch_*``) line up with the dispatched batch
    list; query-indexed arrays (``query_*``) flatten the batches in
    dispatch order -- batch after batch, each batch in arrival order --
    which is exactly the engines' internal flattening, so
    ``np.repeat(batch_array, batch_sizes)`` maps between the two.

    ``approximate`` marks analytic-engine captures: the closed-form
    model has no per-batch queue timeline, so start times are the
    formation times plus the mean wait and the reconstruction is a
    model-consistent approximation rather than a measured schedule.
    """

    __slots__ = ("engine", "num_servers", "approximate",
                 "batch_ready_us", "batch_start_us", "batch_complete_us",
                 "batch_service_us", "batch_open_us", "batch_sizes",
                 "batch_triggers",
                 "query_id", "query_arrival_us", "query_deadline_us",
                 "query_latency_us",
                 "max_queue_depth", "measured_utilization")

    def __init__(self):
        self.engine = None
        self.num_servers = 1
        self.approximate = False
        self.batch_ready_us = None
        self.batch_start_us = None
        self.batch_complete_us = None
        self.batch_service_us = None
        self.batch_open_us = None
        self.batch_sizes = None
        self.batch_triggers = None
        self.query_id = None
        self.query_arrival_us = None
        self.query_deadline_us = None
        self.query_latency_us = None
        self.max_queue_depth = None
        self.measured_utilization = None

    @property
    def filled(self):
        return self.engine is not None

    @property
    def num_batches(self):
        return 0 if self.batch_ready_us is None \
            else self.batch_ready_us.shape[0]

    @property
    def num_queries(self):
        return 0 if self.query_arrival_us is None \
            else self.query_arrival_us.shape[0]

    # ------------------------------------------------------------------ #
    def record(self, engine, batches, ready_us, service_us, start_us,
               complete_us, latency_us, num_servers=1,
               max_queue_depth=None, measured_utilization=None,
               approximate=False):
        """Fill the capture from one engine run.

        ``batches`` is the dispatched batch sequence (a
        :class:`~repro.serving.query_columns.BatchColumns` or a list of
        :class:`~repro.serving.batcher.QueryBatch`); the per-query
        identity columns are extracted here so the engines stay one
        call-site line each.
        """
        if self.filled:
            raise ValueError("RunCapture already holds a run; use a "
                             "fresh capture per simulate call")
        self.engine = str(engine)
        self.num_servers = int(num_servers)
        self.approximate = bool(approximate)
        self.batch_ready_us = np.asarray(ready_us, dtype=np.float64)
        self.batch_service_us = np.asarray(service_us, dtype=np.float64)
        self.batch_start_us = np.asarray(start_us, dtype=np.float64)
        self.batch_complete_us = np.asarray(complete_us, dtype=np.float64)
        self.query_latency_us = np.asarray(latency_us, dtype=np.float64)
        if getattr(batches, "is_columns", False):
            columns = batches.columns
            self.batch_open_us = np.asarray(batches.open_us,
                                            dtype=np.float64)
            self.batch_sizes = np.asarray(batches.sizes, dtype=np.int64)
            self.batch_triggers = [TRIGGER_NAMES[code]
                                   for code in batches.triggers]
            self.query_id = np.asarray(columns.query_id, dtype=np.int64)
            self.query_arrival_us = np.asarray(columns.arrival_us,
                                               dtype=np.float64)
            self.query_deadline_us = np.asarray(columns.deadline_us,
                                                dtype=np.float64)
        else:
            self.batch_open_us = np.asarray(
                [batch.open_us for batch in batches], dtype=np.float64)
            self.batch_sizes = np.asarray(
                [batch.size for batch in batches], dtype=np.int64)
            self.batch_triggers = [batch.trigger for batch in batches]
            queries = [query for batch in batches
                       for query in batch.queries]
            self.query_id = np.asarray(
                [query.query_id for query in queries], dtype=np.int64)
            self.query_arrival_us = np.asarray(
                [query.arrival_us for query in queries], dtype=np.float64)
            self.query_deadline_us = np.asarray(
                [np.nan if query.deadline_us is None else query.deadline_us
                 for query in queries], dtype=np.float64)
        if max_queue_depth is not None:
            self.max_queue_depth = int(max_queue_depth)
        if measured_utilization is not None:
            self.measured_utilization = float(measured_utilization)
        self._validate()

    def _validate(self):
        batches = self.num_batches
        for name in ("batch_start_us", "batch_complete_us",
                     "batch_service_us", "batch_open_us", "batch_sizes"):
            if getattr(self, name).shape[0] != batches:
                raise ValueError("capture %s is not batch-indexed" % name)
        if len(self.batch_triggers) != batches:
            raise ValueError("capture batch_triggers is not batch-indexed")
        queries = int(self.batch_sizes.sum())
        for name in ("query_id", "query_arrival_us", "query_deadline_us",
                     "query_latency_us"):
            if getattr(self, name).shape[0] != queries:
                raise ValueError("capture %s is not query-indexed" % name)

    # ------------------------------------------------------------------ #
    def query_batch_index(self):
        """Batch index of each query (query-indexed int64)."""
        return np.repeat(np.arange(self.num_batches, dtype=np.int64),
                         self.batch_sizes)

    def per_query(self, batch_array):
        """Broadcast a batch-indexed array onto the query axis."""
        return np.repeat(np.asarray(batch_array), self.batch_sizes)
