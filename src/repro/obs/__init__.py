"""Deterministic observability for the serving stack.

A zero-overhead-when-disabled layer spanning the whole query lifecycle
(arrival -> admission -> batching -> routing -> node queue -> service ->
completion), built from four pieces:

* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` with counters,
  gauges, fixed-bucket histograms and snapshot-time collectors; the one
  sink the cluster and its components publish numbers into.
* :mod:`repro.obs.capture` -- :class:`RunCapture`, the raw per-run
  arrays an engine deposits after its queue simulation.  Spans are
  reconstructed *post hoc* from kernel output arrays: no callbacks ever
  enter a jitted loop, so kernel-twin sync and bit-identity are
  untouched.
* :mod:`repro.obs.tracing` -- :class:`Tracer`, per-query lifecycle
  spans and sim-time queue-depth / per-node activity series.
* :mod:`repro.obs.exporters` -- Chrome trace-event JSON (Perfetto),
  metrics JSON snapshots, terminal tables, and the checked-in trace
  schema with its dependency-free validator.
* :mod:`repro.obs.profiling` -- host-side wall-clock stage timers (the
  only obs file allowed to read the host clock).

Entry points: ``ShardedServingCluster.simulate(..., trace=Tracer(),
metrics=True)``, the CLI flags ``python -m repro serve --trace out.json
--metrics-json m.json``, and ``python -m repro report m.json``.
"""

from repro.obs.capture import RunCapture                  # noqa: F401
from repro.obs.exporters import (                         # noqa: F401
    DEFAULT_MAX_QUERY_SPANS,
    chrome_trace,
    format_metrics_table,
    format_trace_summary,
    load_trace_schema,
    validate_chrome_trace,
    validate_json,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (                           # noqa: F401
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    observe_finite,
)
from repro.obs.profiling import (                         # noqa: F401
    StageProfiler,
    format_stage_table,
)
from repro.obs.tracing import QUERY_STAGES, Tracer        # noqa: F401

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_US",
    "DEFAULT_MAX_QUERY_SPANS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QUERY_STAGES",
    "RunCapture",
    "StageProfiler",
    "Tracer",
    "chrome_trace",
    "format_metrics_table",
    "format_stage_table",
    "format_trace_summary",
    "load_trace_schema",
    "observe_finite",
    "validate_chrome_trace",
    "validate_json",
    "write_chrome_trace",
    "write_metrics_json",
]
