"""Static analysis of the repo's own invariants (``python -m repro lint``).

An AST-based linter enforcing, at lint time, the contracts the test
suite otherwise only checks dynamically:

``determinism``
    RNGs are seeded, simulation paths never read the wall clock, bare
    sets are never iterated.
``fingerprint-hygiene``
    Fingerprint / cache-key construction never uses ``id()``, bare
    ``repr()``, or unsorted dict iteration.
``pickle-safety``
    Classes in process-backend payload modules carry no
    lambdas/locks/connections/pools without a ``__getstate__``.
``kernel-twin-sync``
    Every registered numba-kernel/CPython-twin pair (the DDR state
    machine in ``core/kernels.py``, the serving event loops in
    ``serving/event_kernels.py``) stays structurally identical modulo
    an explicit substitution table.
``broad-except-audit``
    Every ``except Exception`` documents its degradation contract in a
    pragma.
``obs-hygiene``
    Library code publishes through the :mod:`repro.obs` metrics /
    exporter API instead of bare ``print()`` or direct stream writes
    (the CLI ``__main__.py`` owns the terminal).
``registry-consistency``
    Every registry entry is buildable, documented, and mirrored by the
    CLI choices.
``pragma-audit``
    Every suppression pragma names a known rule and carries a reason.

Suppress a finding in place with::

    offending_line()  # repro-lint: allow-<rule> (why this is safe)

See :mod:`repro.analysis.linter` for the framework and the individual
rule modules for the precise checks.
"""

from repro.analysis.linter import (       # noqa: F401
    Finding,
    LintUsageError,
    Rule,
    RULES,
    SourceModule,
    available_rules,
    lint_paths,
    register_rule,
)

# Importing the rule modules registers the built-in rules.
from repro.analysis import determinism    # noqa: F401  (registers rule)
from repro.analysis import excepts        # noqa: F401  (registers rule)
from repro.analysis import fingerprint    # noqa: F401  (registers rule)
from repro.analysis import kernel_twin    # noqa: F401  (registers rule)
from repro.analysis import obs_hygiene    # noqa: F401  (registers rule)
from repro.analysis import pickle_safety  # noqa: F401  (registers rule)
from repro.analysis import registries     # noqa: F401  (registers rule)

__all__ = [
    "Finding",
    "LintUsageError",
    "Rule",
    "RULES",
    "SourceModule",
    "available_rules",
    "lint_paths",
    "register_rule",
]
