"""AST-based invariant linter: framework, pragma handling, rule registry.

The repo's headline results rest on contracts that are otherwise only
enforced *dynamically* -- kernel flavors must be bit-identical,
process-backend payloads must pickle, ``stable_fingerprint`` must never
embed memory addresses, simulation paths must be seeded and
order-independent.  This module is the static half of that enforcement:
every rule in :mod:`repro.analysis` walks the AST of the source tree
(plus a few registry-level consistency checks) and reports violations
*before* any simulation runs.

Vocabulary
----------
:class:`Finding`
    One diagnostic: ``(rule, path, line, message)``.
:class:`Rule`
    A named check.  ``check_module(module)`` yields findings for one
    parsed file; ``check_project(modules)`` runs once over the whole
    linted set (used by registry-level rules).  Concrete rules register
    themselves with :func:`register_rule` at import time.
:class:`SourceModule`
    One parsed file: path, source lines, AST, and its lint pragmas.

Pragmas
-------
A finding is suppressed by a pragma comment naming its rule with a
written reason::

    risky_line()  # repro-lint: allow-<rule> (why this is intentional)

The pragma applies to its own line; a comment-only pragma line applies
to the next statement line as well.  A pragma without a reason, or one
naming an unknown rule, is itself reported (rule ``pragma-audit``) --
the repo-wide contract is that every suppression documents *why* the
pattern is safe.
"""

import ast
import io
import re
import tokenize
from pathlib import Path

__all__ = [
    "Finding",
    "LintUsageError",
    "Pragma",
    "Rule",
    "RULES",
    "SourceModule",
    "available_rules",
    "lint_paths",
    "register_rule",
]

#: ``# repro-lint: allow-<rule> (reason)`` -- the reason is mandatory
#: (an empty or missing one is a ``pragma-audit`` finding).
PRAGMA_RE = re.compile(
    r"repro-lint:\s*allow-([A-Za-z][A-Za-z0-9-]*)"
    r"(?:\s*\(([^()]*)\))?")


class LintUsageError(Exception):
    """A caller error (missing path, unknown rule) -- CLI exit code 2."""


class Finding:
    """One diagnostic produced by a rule."""

    __slots__ = ("rule", "path", "line", "message")

    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = str(path)
        self.line = int(line)
        self.message = message

    def as_dict(self):
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}

    def format(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)

    def __repr__(self):
        return "Finding(%r, %r, %d, %r)" % (self.rule, self.path,
                                            self.line, self.message)

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)


class Pragma:
    """One ``allow-<rule>`` pragma and the source lines it covers."""

    __slots__ = ("rule", "reason", "line", "covers")

    def __init__(self, rule, reason, line, covers):
        self.rule = rule
        self.reason = (reason or "").strip()
        self.line = line
        self.covers = covers            # set of suppressed line numbers


def _extract_pragmas(source):
    """Parse every lint pragma out of a file's comment tokens.

    Comment positions come from :mod:`tokenize`, so a ``repro-lint:``
    inside a string literal never counts.  A pragma on a code line
    covers that line; a comment-only pragma line also covers the next
    line that holds code (so a pragma can sit above a long statement).
    """
    lines = source.splitlines()
    comments = []                       # (line, column, text)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1],
                                 token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # A file that does not tokenize is reported as a parse error by
        # lint_paths; pragma extraction just stops at the break.
        pass

    def next_code_line(after):
        for number in range(after + 1, len(lines) + 1):
            text = lines[number - 1].strip()
            if text and not text.startswith("#"):
                return number
        return None

    pragmas = []
    for line, column, text in comments:
        comment_only = not lines[line - 1][:column].strip()
        for match in PRAGMA_RE.finditer(text):
            covers = {line}
            if comment_only:
                code_line = next_code_line(line)
                if code_line is not None:
                    covers.add(code_line)
            pragmas.append(Pragma(match.group(1), match.group(2),
                                  line, covers))
    return pragmas


class SourceModule:
    """One parsed Python file handed to the rules."""

    def __init__(self, path, source, tree, pragmas):
        self.path = Path(path)
        self.source = source
        self.tree = tree
        self.pragmas = pragmas

    @classmethod
    def load(cls, path):
        """Parse ``path``; a syntax error yields ``tree=None``."""
        source = Path(path).read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            tree = None
        return cls(path, source, tree, _extract_pragmas(source))

    def finding(self, rule, node_or_line, message):
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(rule, self.path, line, message)

    def suppressed_lines(self, rule):
        """Every line a pragma for ``rule`` covers in this file."""
        covered = set()
        for pragma in self.pragmas:
            if pragma.rule == rule:
                covered |= pragma.covers
        return covered


class Rule:
    """Base class for lint rules; subclasses override one hook."""

    #: Registry name; also the pragma suffix (``allow-<name>``).
    name = ""
    #: One-line summary shown by ``lint --list`` style introspection.
    description = ""

    def check_module(self, module):
        """Findings for one parsed :class:`SourceModule`."""
        return ()

    def check_project(self, modules):
        """Findings computed once over the whole linted file set."""
        return ()


#: Rule registry: name -> rule instance (populated at import time by the
#: concrete rule modules; see repro.analysis.__init__).
RULES = {}


def register_rule(rule):
    """Register a rule instance (class decorator friendly)."""
    if isinstance(rule, type):
        rule = rule()
    if not rule.name:
        raise ValueError("rules must define a non-empty name")
    RULES[rule.name] = rule
    return rule


def available_rules():
    """Sorted names of every registered rule."""
    return sorted(RULES)


def iter_python_files(paths):
    """Expand files/directories into a sorted, deduplicated .py list."""
    files = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise LintUsageError("no such file or directory: %s" % path)
    return sorted(files)


class _PragmaAuditRule(Rule):
    """Every pragma must name a registered rule and carry a reason."""

    name = "pragma-audit"
    description = ("lint pragmas must name a known rule and document "
                   "a reason in parentheses")

    def check_module(self, module):
        for pragma in module.pragmas:
            if pragma.rule not in RULES:
                yield module.finding(
                    self.name, pragma.line,
                    "pragma allows unknown rule %r (known: %s)"
                    % (pragma.rule, ", ".join(available_rules())))
            if not pragma.reason:
                yield module.finding(
                    self.name, pragma.line,
                    "pragma 'allow-%s' carries no reason; write "
                    "'# repro-lint: allow-%s (why this is safe)'"
                    % (pragma.rule, pragma.rule))


register_rule(_PragmaAuditRule)


def _load_pragma_lines(path, rule, cache):
    """Suppressed lines of ``rule`` in an arbitrary file (memoised).

    Project-level rules may anchor findings in files outside the linted
    set (e.g. the CLI module); their pragmas still apply.
    """
    key = str(path)
    if key not in cache:
        try:
            pragmas = _extract_pragmas(Path(path).read_text())
        except OSError:
            pragmas = []
        cache[key] = pragmas
    covered = set()
    for pragma in cache[key]:
        if pragma.rule == rule:
            covered |= pragma.covers
    return covered


def lint_paths(paths, rules=None):
    """Lint ``paths`` (files or directories) and return the findings.

    ``rules`` selects a subset by name (default: every registered rule);
    an unknown name raises :class:`LintUsageError`.  Findings suppressed
    by a pragma are dropped; the remainder comes back deduplicated and
    sorted by ``(path, line, rule)``.
    """
    if rules is None:
        selected = [RULES[name] for name in available_rules()]
    else:
        unknown = [name for name in rules if name not in RULES]
        if unknown:
            raise LintUsageError(
                "unknown rule%s %s; available: %s"
                % ("s" if len(unknown) > 1 else "",
                   ", ".join(repr(name) for name in unknown),
                   ", ".join(available_rules())))
        selected = [RULES[name] for name in rules]
    files = iter_python_files(paths)
    modules = []
    findings = []
    for path in files:
        module = SourceModule.load(path)
        if module.tree is None:
            findings.append(Finding("parse-error", path, 1,
                                    "file does not parse; fix the "
                                    "syntax error before linting"))
            continue
        modules.append(module)
    by_path = {str(module.path): module for module in modules}
    for rule in selected:
        for module in modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(modules))
    pragma_cache = {}
    kept = {}
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None:
            covered = module.suppressed_lines(finding.rule)
        else:
            covered = _load_pragma_lines(finding.path, finding.rule,
                                         pragma_cache)
        if finding.line in covered:
            continue
        kept[(finding.rule, finding.path, finding.line,
              finding.message)] = finding
    return sorted(kept.values(), key=Finding.sort_key)
