"""Rule ``registry-consistency``: registries stay importable and exposed.

Every pluggable layer resolves by registry name -- embedding systems,
execution backends, serving engines, admission controllers, SLO
policies, placement policies.  A registry entry that cannot be built,
has no documentation, or is missing from the CLI ``choices`` is a
latent runtime failure (or an invisible feature): this rule audits the
registries against themselves and against the ``python -m repro``
argument parser.

Checks per registry entry:

* **importable/buildable** -- the registered factory resolves to a real
  object (engines are instantiated; classes are inspected as-is);
* **docstringed** -- the implementation (or its registry description)
  carries documentation;
* **CLI-exposed** -- for registries with a CLI flag, the flag's
  ``choices`` equal the registry's names exactly, in both directions
  (systems and SLO policies have no fixed choices list: ``--system`` is
  free-form by design and SLO policies are resolved from numbers).

Unlike the other rules this one runs once per lint (a *project* rule)
and only when the linted set contains the real ``repro`` package --
fixture trees never trigger it.  Findings anchor at the offending
definition via :mod:`inspect`.
"""

import argparse
import inspect
from pathlib import Path

from repro.analysis.linter import Finding, Rule, register_rule


def _anchor(obj, fallback_module):
    """Best-effort ``(path, line)`` of an object's definition."""
    try:
        path = inspect.getsourcefile(obj)
        line = inspect.getsourcelines(obj)[1]
        if path is not None:
            return path, line
    except (TypeError, OSError):
        pass
    return getattr(fallback_module, "__file__", "<unknown>"), 1


def _has_doc(obj):
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


def _serve_choices():
    """The ``serve`` subparser's option ``choices`` by flag name."""
    from repro.__main__ import build_parser

    parser = build_parser()
    sub_action = next(action for action in parser._actions
                      if isinstance(action, argparse._SubParsersAction))
    serve = sub_action.choices["serve"]
    return {action.option_strings[0]: action.choices
            for action in serve._actions
            if action.option_strings and action.choices is not None}


@register_rule
class RegistryConsistencyRule(Rule):
    name = "registry-consistency"
    description = ("registry entries must be importable, documented, "
                   "and mirrored by the CLI choices")

    def check_project(self, modules):
        import repro.systems.registry as systems_registry

        sentinel = Path(systems_registry.__file__).resolve()
        if not any(module.path.resolve() == sentinel
                   for module in modules):
            return
        yield from self._check_systems()
        yield from self._check_named_registries()

    # ------------------------------------------------------------------ #
    def _check_systems(self):
        import repro.systems.adapters as adapters
        from repro.systems import available_systems, system_description
        from repro.systems.registry import _REGISTRY

        for name in available_systems():
            spec = _REGISTRY[name]
            path, line = _anchor(spec.factory, adapters)
            if not callable(spec.factory):
                yield Finding(self.name, path, line,
                              "system %r registered a non-callable "
                              "factory" % name)
            if not (system_description(name) or "").strip() \
                    and not _has_doc(spec.factory):
                yield Finding(self.name, path, line,
                              "system %r has neither a registry "
                              "description nor a factory docstring"
                              % name)

    def _check_named_registries(self):
        import repro.core.backend as backend_mod
        import repro.serving.admission as admission_mod
        import repro.serving.engine as engine_mod
        import repro.serving.events as events_mod  # registers "event*"
        import repro.serving.sharding as sharding_mod
        import repro.serving.slo as slo_mod

        _ = events_mod
        choices = _serve_choices()
        registries = (
            ("backend", backend_mod.BACKENDS, backend_mod,
             "--backend", True),
            ("serving engine", engine_mod.ENGINES, engine_mod,
             "--engine", True),
            ("admission controller",
             admission_mod.ADMISSION_CONTROLLERS, admission_mod,
             "--admission", True),
            ("SLO policy", slo_mod.SLO_POLICIES, slo_mod, None, False),
            # Placement policies are plain functions taking
            # (table_loads, num_nodes) -- inspect, never instantiate.
            ("placement policy", sharding_mod.PLACEMENT_POLICIES,
             sharding_mod, "--shard-policy", False),
        )
        for kind, registry, module, flag, instantiate in registries:
            for name in sorted(registry):
                factory = registry[name]
                target = factory
                if instantiate and not inspect.isclass(factory) \
                        and callable(factory):
                    # Zero-argument factories (e.g. the event-edf
                    # lambda): the built instance is the entry.
                    try:
                        target = type(factory())
                    except Exception as error:  # repro-lint: allow-broad-except-audit (a factory may raise anything; the failure itself is the finding)
                        path, line = _anchor(factory, module)
                        yield Finding(
                            self.name, path, line,
                            "%s %r cannot be built: %s" % (kind, name,
                                                           error))
                        continue
                path, line = _anchor(target, module)
                if not _has_doc(target):
                    yield Finding(
                        self.name, path, line,
                        "%s %r (%s) has no docstring -- registry "
                        "entries are the discoverable API surface"
                        % (kind, name, getattr(target, "__name__",
                                               target)))
            if flag is None:
                continue
            cli = choices.get(flag)
            if cli is None:
                path = module.__file__
                yield Finding(
                    self.name, path, 1,
                    "CLI flag %s declares no choices, so the %s "
                    "registry is not mirrored by the parser"
                    % (flag, kind))
                continue
            registry_names = set(registry)
            cli_names = set(cli)
            for missing in sorted(registry_names - cli_names):
                path, line = _anchor(registry[missing], module)
                yield Finding(
                    self.name, path, line,
                    "%s %r is registered but missing from the CLI "
                    "%s choices" % (kind, missing, flag))
            for extra in sorted(cli_names - registry_names):
                from repro import __main__ as cli_mod

                yield Finding(
                    self.name, cli_mod.__file__, 1,
                    "CLI %s choice %r names no registered %s"
                    % (flag, extra, kind))
