"""Rule ``broad-except-audit``: every ``except Exception`` states why.

A broad handler that silently swallows is how a cache tier hides a
corrupted database, a worker pool hides a pickling bug, and a benchmark
driver hides a broken import.  The repo *does* use broad excepts
deliberately -- the service store degrades to a miss rather than crash a
run, backend preflights probe "does this pickle at all" -- but each such
site must say so where it stands: a pragma with a written reason.

Flagged: ``except Exception``, ``except BaseException``, and bare
``except:`` (including tuples containing them) without a
``# repro-lint: allow-broad-except-audit (reason)`` pragma on the
handler line.
"""

import ast

from repro.analysis.linter import Rule, register_rule

_BROAD_NAMES = {"Exception", "BaseException"}


def _broad_name(type_node):
    """The broad exception name a handler catches, or ``None``."""
    if type_node is None:
        return "bare except"
    if isinstance(type_node, ast.Name) and type_node.id in _BROAD_NAMES:
        return type_node.id
    if isinstance(type_node, ast.Tuple):
        for element in type_node.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


@register_rule
class BroadExceptAuditRule(Rule):
    name = "broad-except-audit"
    description = ("except Exception / bare except requires a pragma "
                   "with a written reason")

    def check_module(self, module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _broad_name(node.type)
            if caught is not None:
                yield module.finding(
                    self.name, node,
                    "broad handler (%s) swallows every failure mode -- "
                    "catch the specific exceptions, or document the "
                    "degradation contract with '# repro-lint: "
                    "allow-broad-except-audit (reason)'" % caught)
