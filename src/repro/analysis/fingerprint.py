"""Rule ``fingerprint-hygiene``: content-stable keys, never addresses.

``stable_fingerprint`` / the batch cache keys are the namespace of the
persistent service-time store: if a fingerprint embeds a memory address
or dict construction order, two identical runs key differently (silent
cache misses) or -- far worse -- two *different* configurations collide.
This rule statically audits the key-construction code:

* Inside any function whose name marks it as fingerprint/cache-key
  construction (``fingerprint``, ``_stable_repr``, ``cache_key``,
  ``batch_key``, ``key_digest``):

  - ``id(...)`` is banned: it is a memory address.
  - ``repr(...)`` (called, or passed around e.g. as a sort key) is
    flagged: the default object ``__repr__`` embeds an address, so a
    bare ``repr`` is only safe on scalar leaves -- say so in a pragma.
  - iterating ``.keys()`` / ``.values()`` / ``.items()`` without a
    ``sorted(...)`` wrapper is flagged: insertion order leaks
    construction history into the key.

* Anywhere in the tree, assigning an expression containing ``id(...)``
  to a name matching ``key`` / ``fingerprint`` / ``digest`` is flagged:
  an identity memo keyed by address must at minimum document why reuse
  of a collected object's id cannot serve stale data.
"""

import ast
import re

from repro.analysis.linter import Rule, register_rule

#: Function names treated as fingerprint / cache-key construction.
FINGERPRINT_FUNC_RE = re.compile(
    r"fingerprint|stable_repr|cache_key|batch_key|key_digest")

#: Assignment targets that make an ``id(...)`` value a cache key.
_KEYISH_NAME_RE = re.compile(r"key|fingerprint|digest")

_DICT_VIEW_ATTRS = {"keys", "values", "items"}


def _contains_id_call(node):
    for child in ast.walk(node):
        if isinstance(child, ast.Call) \
                and isinstance(child.func, ast.Name) \
                and child.func.id == "id":
            return True
    return False


@register_rule
class FingerprintHygieneRule(Rule):
    name = "fingerprint-hygiene"
    description = ("fingerprint/cache-key code must not use id(), bare "
                   "repr(), or unsorted dict iteration")

    def check_module(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and FINGERPRINT_FUNC_RE.search(node.name):
                yield from self._check_fingerprint_function(module, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_keyish_assignment(module, node)

    # ------------------------------------------------------------------ #
    def _check_fingerprint_function(self, module, func):
        call_funcs = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                # repro-lint: allow-fingerprint-hygiene (AST-node identity within one walk; nothing here persists as a key)
                call_funcs.add(id(node.func))
                if isinstance(node.func, ast.Name):
                    if node.func.id == "id":
                        yield module.finding(
                            self.name, node,
                            "id() in fingerprint function %r is a memory "
                            "address -- it changes every run and can be "
                            "reused after collection" % func.name)
                    elif node.func.id == "repr":
                        yield module.finding(
                            self.name, node,
                            "repr() in fingerprint function %r embeds an "
                            "address for objects with the default "
                            "__repr__ -- render content explicitly, or "
                            "pragma the scalar-leaf fallback" % func.name)
        for node in ast.walk(func):
            if (isinstance(node, ast.Name) and node.id == "repr"
                    and isinstance(node.ctx, ast.Load)
                    # repro-lint: allow-fingerprint-hygiene (AST-node identity check within one walk, not a cache key)
                    and id(node) not in call_funcs):
                yield module.finding(
                    self.name, node,
                    "bare `repr` passed around in fingerprint function "
                    "%r (e.g. as a sort key) orders objects by their "
                    "default address-bearing repr" % func.name)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_dict_iteration(module, node.iter,
                                                      func)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_dict_iteration(
                        module, generator.iter, func)

    def _check_dict_iteration(self, module, iter_node, func):
        if isinstance(iter_node, ast.Call) \
                and isinstance(iter_node.func, ast.Attribute) \
                and iter_node.func.attr in _DICT_VIEW_ATTRS:
            yield module.finding(
                self.name, iter_node,
                "unsorted .%s() iteration in fingerprint function %r "
                "leaks dict construction order into the key -- wrap it "
                "in sorted(...)" % (iter_node.func.attr, func.name))

    def _check_keyish_assignment(self, module, node):
        names = [target.id for target in node.targets
                 if isinstance(target, ast.Name)]
        if not any(_KEYISH_NAME_RE.search(name) for name in names):
            return
        if _contains_id_call(node.value):
            yield module.finding(
                self.name, node,
                "cache key %r built from id(...) is a memory address -- "
                "a collected object's id can be reused and serve stale "
                "entries; key by content, or document the identity "
                "guard in a pragma" % names[0])
