"""Rule ``pickle-safety``: process-backend payload classes must pickle.

The process and shared-memory backends ship work through ``pickle``:
channel work units carry :class:`SLSRequest` objects, node jobs carry a
registry spec, and parallel sweeps pickle the whole parameter set --
queries, frontend, sharder, admission controller, SLO policy, service
model, service store.  A field holding a lambda, a lock, a live sqlite
connection or a thread pool turns that into an opaque
``BrokenProcessPool`` at dispatch time (the dynamic preflight catches
some of it, but only on the paths it guards).

This rule checks statically: every class defined in a *payload module*
(the modules whose instances cross the process boundary, listed in
:data:`PAYLOAD_MODULE_SUFFIXES`) must not assign a lambda, a
``threading`` synchronisation primitive, an executor/pool, or a
``sqlite3.connect(...)`` result to ``self.<field>`` -- unless the class
defines ``__getstate__`` / ``__reduce__`` that takes responsibility for
dropping the unpicklable state (the generalisation of the
``InterpolatingServiceModel`` grid-cache fix and the
``ServiceTimeStore`` pickle-as-path contract).
"""

import ast

from repro.analysis.linter import Rule, register_rule

#: Modules whose class instances are pickled into worker processes
#: (backend work units, sweep specs and parameters, service models).
PAYLOAD_MODULE_SUFFIXES = (
    "repro/serving/cluster.py",
    "repro/serving/arrival.py",
    "repro/serving/batcher.py",
    "repro/serving/sharding.py",
    "repro/serving/admission.py",
    "repro/serving/slo.py",
    "repro/perf/service_model.py",
    "repro/perf/service_store.py",
    "repro/dlrm/operators.py",
)

#: Call targets whose results never survive pickling.
_RISKY_CALLS = {
    "Lock": "a lock",
    "RLock": "a lock",
    "Condition": "a condition variable",
    "Semaphore": "a semaphore",
    "BoundedSemaphore": "a semaphore",
    "Barrier": "a barrier",
    "connect": "a database connection",
    "ThreadPoolExecutor": "a thread pool",
    "ProcessPoolExecutor": "a process pool",
    "Pool": "a worker pool",
    "SharedMemory": "a shared-memory handle",
}

_ESCAPE_HATCHES = ("__getstate__", "__reduce__", "__reduce_ex__")


def _is_payload_module(path):
    text = path.as_posix()
    return any(text.endswith(suffix) for suffix in PAYLOAD_MODULE_SUFFIXES)


def _risky_value(value):
    """Why an assigned expression cannot pickle, or ``None``."""
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else \
            func.id if isinstance(func, ast.Name) else None
        if name in _RISKY_CALLS:
            return _RISKY_CALLS[name]
    return None


@register_rule
class PickleSafetyRule(Rule):
    name = "pickle-safety"
    description = ("classes in process-backend payload modules must not "
                   "hold lambdas/locks/connections/pools without a "
                   "__getstate__ that drops them")

    def check_module(self, module):
        if not _is_payload_module(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module, cls):
        has_escape = any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in _ESCAPE_HATCHES
            for stmt in cls.body)
        if has_escape:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                fields = [target.attr for target in node.targets
                          if isinstance(target, ast.Attribute)
                          and isinstance(target.value, ast.Name)
                          and target.value.id == "self"]
                if not fields:
                    continue
                why = _risky_value(node.value)
                if why is not None:
                    yield module.finding(
                        self.name, node,
                        "payload class %r stores %s in self.%s but "
                        "defines no __getstate__ -- it cannot cross the "
                        "process-backend boundary (pickle); drop the "
                        "field in __getstate__ like "
                        "InterpolatingServiceModel/ServiceTimeStore do"
                        % (cls.name, why, fields[0]))
