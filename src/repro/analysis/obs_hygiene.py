"""Rule ``obs-hygiene``: library code reports through obs, not print().

With :mod:`repro.obs` in place, every number a component wants seen has
a proper sink: counters/gauges/histograms go into a
:class:`~repro.obs.metrics.MetricsRegistry`, human-readable tables come
from ``format_metrics_table`` / ``format_trace_summary`` (which *return*
strings), and traces go through the exporters.  A bare ``print()``
inside ``repro`` library code bypasses all of that -- it interleaves
with real CLI output, cannot be captured by callers, and silently
couples library behaviour to a terminal.

Scope: every module under a ``repro`` package **except** the CLI entry
point ``__main__.py``, whose whole job is terminal output.  Writing
directly to ``sys.stdout`` / ``sys.stderr`` is flagged for the same
reason.  Legitimate exceptions (e.g. a debugging hook behind an
explicit verbosity flag) take the usual pragma::

    print(line)  # repro-lint: allow-obs-hygiene (reason)
"""

import ast

from repro.analysis.linter import Rule, register_rule

#: Stream objects whose ``.write`` is terminal output in disguise.
_STREAM_NAMES = {"stdout", "stderr"}


def _in_library(path):
    """True for modules under a ``repro`` package, minus the CLI."""
    if path.name == "__main__.py":
        return False
    return "repro" in path.parts[:-1]


def _is_stream_write(func):
    """``sys.stdout.write`` / ``sys.stderr.write`` attribute chains."""
    if not (isinstance(func, ast.Attribute) and func.attr == "write"):
        return False
    target = func.value
    return (isinstance(target, ast.Attribute)
            and target.attr in _STREAM_NAMES
            and isinstance(target.value, ast.Name)
            and target.value.id == "sys")


@register_rule
class ObsHygieneRule(Rule):
    name = "obs-hygiene"
    description = ("library code must publish through the obs "
                   "metrics/exporter API, not bare print()")

    def check_module(self, module):
        if not _in_library(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) \
                    and node.func.id == "print":
                yield module.finding(
                    self.name, node,
                    "bare print() in library code -- publish via a "
                    "MetricsRegistry / Tracer and let callers render "
                    "with repro.obs.exporters (CLI __main__.py owns "
                    "the terminal)")
            elif _is_stream_write(node.func):
                yield module.finding(
                    self.name, node,
                    "direct %s in library code -- return strings or "
                    "publish through repro.obs instead of writing to "
                    "the terminal" % ast.unparse(node.func))
