"""Rule ``kernel-twin-sync``: the two kernel flavors cannot drift apart.

The repo keeps every performance kernel twice: the canonical
struct-of-arrays function numba jits (whose un-jitted source is the
``flat-python`` flavor) and a CPython twin that must implement the same
arithmetic.  ``repro/core/kernels.py`` holds the DDR bank state machine
as ``_execute_window_flat`` / ``_execute_window_python``;
``repro/serving/event_kernels.py`` holds the serving event loops (FIFO
dispatch, EDF dispatch, admission) the same way.  The runtime parity
tests prove the flavors bit-identical -- but only on the compositions
they run, and only on hosts that exercise both flavors.  An edit to one
twin's timing arithmetic that is not mirrored into the other is exactly
the kind of drift that survives a partial test matrix.

This rule proves the drift cannot happen silently.  Every pair in the
:data:`TWIN_PAIRS` registry is compared structurally: the region under
the pair's *anchor* statement (for the DDR kernels, the ``else`` branch
of their ``if hit:`` dispatch -- precharge/activate, the burst read
loop, and the busy accounting tail), or the whole function body minus
any docstring when the pair has no anchor (the event kernels, whose
twins are full-body identical).  The two regions must be structurally
identical ASTs after normalisation:

* line numbers, column offsets and comments are ignored (pure AST
  comparison);
* an assignment whose value contains a conditional expression is split
  into an explicit ``if``/``else`` pair, so
  ``x = a + (p if c else q)`` and ``if c: x = a + p else: x = a + q``
  compare equal -- the one idiomatic difference between the numba
  subset and tuned CPython;
* the :data:`ALLOWED_SUBSTITUTIONS` table maps the flavor-specific
  spellings the twins are *permitted* to differ in (numba's typed-dict
  sentinel vs CPython's ``dict.get``/``None``, ``use_cache != 0`` vs
  truthiness) onto one canonical form.

Any other difference -- a flipped operator, a reordered statement, a
changed timing constant -- is a finding naming the first divergent
statement in each twin.
"""

import ast
import copy

from repro.analysis.linter import Rule, register_rule

#: Function pairs that must stay structurally identical.  The third
#: field names the variable whose ``if <name>:`` statement anchors the
#: compared region (its ``else`` branch), or is ``None`` to compare the
#: whole function body minus any leading docstring.  Pairs are matched
#: by name in whatever module defines both -- a module holding neither
#: twin of a pair is exempt from it.
TWIN_PAIRS = (
    # DDR bank state machine (repro/core/kernels.py).
    ("_execute_window_flat", "_execute_window_python", "hit"),
    # Serving event loops (repro/serving/event_kernels.py).
    ("_fifo_events_flat", "_fifo_events_python", None),
    ("_edf_events_flat", "_edf_events_python", None),
    ("_admission_events_flat", "_admission_events_python", None),
)

#: The flavor-specific spellings the twins may differ in.  Each entry is
#: normalised to one canonical AST by :class:`_Canonicalize`; anything
#: outside this table must match exactly.
ALLOWED_SUBSTITUTIONS = (
    "d.get(k) <-> d[k] (typed-dict subscript vs CPython .get)",
    "x is None / x is not None <-> x == _PART_UNSET / x != _PART_UNSET "
    "(missing-memo sentinel)",
    "use_cache != 0 <-> use_cache (int flag vs truthiness)",
    "x = a if c else b <-> if c: x = a else: x = b "
    "(conditional-expression assignment split)",
)


class _ReplaceFirstIfExp(ast.NodeTransformer):
    """Replace the first conditional expression with one of its arms."""

    def __init__(self, use_body):
        self.use_body = use_body
        self.done = False

    def visit_IfExp(self, node):
        if not self.done:
            self.done = True
            arm = node.body if self.use_body else node.orelse
            return self.visit(arm)
        return self.generic_visit(node)


def _find_ifexp(node):
    for child in ast.walk(node):
        if isinstance(child, ast.IfExp):
            return child
    return None


class _Canonicalize(ast.NodeTransformer):
    """Apply the allowed-substitution table and the IfExp split."""

    def visit_Assign(self, node):
        self.generic_visit(node)
        ifexp = _find_ifexp(node.value)
        if ifexp is None:
            return node
        test = ifexp.test
        body_value = _ReplaceFirstIfExp(True).visit(
            copy.deepcopy(node.value))
        orelse_value = _ReplaceFirstIfExp(False).visit(
            copy.deepcopy(node.value))
        branch = ast.If(
            test=test,
            body=[ast.Assign(targets=copy.deepcopy(node.targets),
                             value=body_value)],
            orelse=[ast.Assign(targets=copy.deepcopy(node.targets),
                               value=orelse_value)])
        # Recurse: arms may still hold further conditional expressions.
        return self.visit(branch)

    def visit_Call(self, node):
        self.generic_visit(node)
        # d.get(k) -> d[k]
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get" and len(node.args) == 1 \
                and not node.keywords:
            return ast.Subscript(value=node.func.value,
                                 slice=node.args[0], ctx=ast.Load())
        return node

    def visit_Compare(self, node):
        self.generic_visit(node)
        if len(node.ops) != 1:
            return node
        op, right = node.ops[0], node.comparators[0]
        # x is None -> x == _PART_UNSET; x is not None -> x != ...
        if isinstance(right, ast.Constant) and right.value is None \
                and isinstance(op, (ast.Is, ast.IsNot)):
            return ast.Compare(
                left=node.left,
                ops=[ast.Eq() if isinstance(op, ast.Is) else ast.NotEq()],
                comparators=[ast.Name(id="_PART_UNSET", ctx=ast.Load())])
        # x == _PART_UNSET stays; x != 0 on a flag name -> bare name.
        if isinstance(node.left, ast.Name) \
                and node.left.id == "use_cache" \
                and isinstance(op, ast.NotEq) \
                and isinstance(right, ast.Constant) and right.value == 0:
            return node.left
        return node


def _canonical_dump(stmt):
    tree = _Canonicalize().visit(copy.deepcopy(stmt))
    return ast.dump(tree, include_attributes=False)


def _twin_region(func, anchor):
    """The compared statement region of one twin.

    With an anchor: the ``else`` branch of the ``if <anchor>:``
    statement, or ``None`` when the anchor is missing.  Without one
    (``anchor=None``): the whole function body, minus a leading
    docstring expression.
    """
    if anchor is None:
        body = func.body
        if body and isinstance(body[0], ast.Expr) \
                and isinstance(body[0].value, ast.Constant) \
                and isinstance(body[0].value.value, str):
            body = body[1:]
        return body
    for node in ast.walk(func):
        if isinstance(node, ast.If) and isinstance(node.test, ast.Name) \
                and node.test.id == anchor:
            return node.orelse
    return None


def compare_twin_regions(flat_func, python_func, anchor="hit"):
    """Structural comparison of the twins' anchored regions.

    Returns ``None`` when the regions match, else a
    ``(message, flat_line, python_line)`` triple locating the first
    divergence (used both by the rule and by the drift tests).
    """
    flat_region = _twin_region(flat_func, anchor)
    python_region = _twin_region(python_func, anchor)
    if flat_region is None or python_region is None:
        missing = flat_func.name if flat_region is None \
            else python_func.name
        return ("twin %r lost its 'if %s:' anchor -- the compared "
                "kernel region cannot be located" % (missing, anchor),
                flat_func.lineno, python_func.lineno)
    flat_dumps = [_canonical_dump(stmt) for stmt in flat_region]
    python_dumps = [_canonical_dump(stmt) for stmt in python_region]
    limit = min(len(flat_dumps), len(python_dumps))
    for index in range(limit):
        if flat_dumps[index] != python_dumps[index]:
            return ("statement %d of the compared kernel region "
                    "differs between %r (line %d) and %r (line %d) "
                    "beyond the allowed substitutions -- the kernel "
                    "twins have drifted apart"
                    % (index + 1, flat_func.name,
                       flat_region[index].lineno, python_func.name,
                       python_region[index].lineno),
                    flat_region[index].lineno,
                    python_region[index].lineno)
    if len(flat_dumps) != len(python_dumps):
        longer, region = (flat_func, flat_region) \
            if len(flat_dumps) > len(python_dumps) \
            else (python_func, python_region)
        return ("twin %r has %d extra statement(s) in its compared "
                "kernel region" % (longer.name,
                                   abs(len(flat_dumps)
                                       - len(python_dumps))),
                region[limit].lineno, region[limit].lineno)
    return None


@register_rule
class KernelTwinSyncRule(Rule):
    name = "kernel-twin-sync"
    description = ("the numba kernel and its CPython twin must stay "
                   "structurally identical modulo the allowed "
                   "substitutions")

    def check_module(self, module):
        functions = {
            node.name: node for node in ast.walk(module.tree)
            if isinstance(node, ast.FunctionDef)}
        for flat_name, python_name, anchor in TWIN_PAIRS:
            flat_func = functions.get(flat_name)
            python_func = functions.get(python_name)
            if flat_func is None or python_func is None:
                # Not the kernels module (or a fixture without both
                # twins): the pair simply does not apply here.
                continue
            divergence = compare_twin_regions(flat_func, python_func,
                                              anchor)
            if divergence is not None:
                message, _, python_line = divergence
                yield module.finding(self.name, python_line, message)
