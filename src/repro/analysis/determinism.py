"""Rule ``determinism``: seeded RNGs, no wall clocks, no set iteration.

The whole repo's bit-identity story (kernel flavor parity, backend
equality, byte-identical sweep reports) collapses if any simulation
input depends on process-local state.  Three statically checkable
classes of violation:

* **Unseeded RNG construction** -- ``random.Random()``,
  ``numpy.random.default_rng()`` or ``RandomState()`` with no seed
  draws from OS entropy, so two runs of the same composition diverge.
  Flagged everywhere (benchmarks included: an unseeded benchmark cannot
  assert byte-identity across backends).
* **Wall-clock reads in simulation paths** -- ``time.time()``,
  ``perf_counter()``, ``datetime.now()`` and friends inside
  ``repro/core``, ``repro/dram``, ``repro/serving`` or ``repro/obs``
  leak host timing into simulated cycles.  Benchmarks measure wall
  clock legitimately, so the check is scoped to those packages -- with
  exactly one carve-out: ``repro/obs/profiling.py``, the host-side
  stage-timer module, whose entire purpose is wall-clock measurement of
  the simulator itself (its timings are reporting output, never
  simulation input).
* **Iteration over bare sets** -- set iteration order is salted per
  process, so a ``for`` loop or comprehension over a set literal,
  ``set(...)`` or ``frozenset(...)`` feeds nondeterministic order into
  whatever it builds (fingerprints, cache keys, routing tables).  Wrap
  the set in ``sorted(...)`` instead.
"""

import ast

from repro.analysis.linter import Rule, register_rule

#: Constructors that must receive a seed argument.
_RNG_CONSTRUCTORS = {
    "Random": "random.Random",
    "default_rng": "numpy.random.default_rng",
    "RandomState": "numpy.random.RandomState",
}

#: Attribute reads that return wall-clock values.
_WALLCLOCK_ATTRS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "now", "utcnow", "today",
    "localtime", "gmtime",
}

#: Module roots the wall-clock attributes hang off.
_WALLCLOCK_ROOTS = {"time", "datetime", "date"}

#: repro sub-packages whose code computes simulated time and therefore
#: must never read the host clock.
_SIM_PACKAGES = {"core", "dram", "serving", "obs"}

#: The one wall-clock-exempt file: host-side stage timers
#: (:mod:`repro.obs.profiling`) measure the simulator, not the
#: simulation.
_WALLCLOCK_EXEMPT = ("obs", "profiling.py")


def _call_name(func):
    """Trailing name of a call target (``a.b.c()`` -> ``"c"``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _root_name(node):
    """Leftmost name of an attribute chain (``a.b.c`` -> ``"a"``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _in_sim_package(path):
    """True for files under ``repro/{core,dram,serving,obs}`` -- except
    the single exempt profiling module."""
    parts = path.parts
    for index, part in enumerate(parts[:-1]):
        if part == "repro" and parts[index + 1] in _SIM_PACKAGES:
            if parts[index + 1] == _WALLCLOCK_EXEMPT[0] \
                    and path.name == _WALLCLOCK_EXEMPT[1]:
                return False
            return True
    return False


def _is_bare_set(node):
    """Set literal / comprehension / direct set() call used as is."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register_rule
class DeterminismRule(Rule):
    name = "determinism"
    description = ("RNGs must be seeded, simulation paths must not read "
                   "the wall clock, and bare sets must not be iterated")

    def check_module(self, module):
        sim_path = _in_sim_package(module.path)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, sim_path)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iteration(module,
                                                     generator.iter)

    def _check_call(self, module, node, sim_path):
        called = _call_name(node.func)
        if called in _RNG_CONSTRUCTORS:
            seeded = [arg for arg in node.args
                      if not (isinstance(arg, ast.Constant)
                              and arg.value is None)]
            seeded += [kw for kw in node.keywords
                       if not (isinstance(kw.value, ast.Constant)
                               and kw.value.value is None)]
            if not seeded:
                yield module.finding(
                    self.name, node,
                    "unseeded %s() draws OS entropy -- pass an explicit "
                    "seed so runs are reproducible"
                    % _RNG_CONSTRUCTORS[called])
        if sim_path and called in _WALLCLOCK_ATTRS \
                and isinstance(node.func, ast.Attribute) \
                and _root_name(node.func) in _WALLCLOCK_ROOTS:
            yield module.finding(
                self.name, node,
                "wall-clock read %s() inside a simulation path -- "
                "simulated time must come from the cycle model, never "
                "the host clock" % ast.unparse(node.func))

    def _check_iteration(self, module, iter_node):
        if _is_bare_set(iter_node):
            yield module.finding(
                self.name, iter_node,
                "iteration over a bare set has process-salted order -- "
                "wrap it in sorted(...) before it feeds fingerprints, "
                "cache keys or routing")
