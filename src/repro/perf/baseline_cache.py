"""Memoised DDR4 baseline simulation.

Every speedup the paper reports is normalised against the host DDR4 system
running the *same* physical-address trace.  Sweeps that vary only the RecNMP
side (cache capacity, packet size, scheduling policy, channel count) used to
re-run that baseline cycle simulation from scratch on every call, which
dominated their runtime.  This module runs the baseline through a keyed LRU
cache: the key captures the trace content and the full DRAM configuration,
so a repeated (trace, config) pair returns the stored
:class:`~repro.dram.system.DramSystemResult` without re-simulating.

The cache is process-wide and thread-safe (the concurrent multi-channel
coordinator hits it from worker threads).  Results must be treated as
read-only by callers, which all current callers honour.
"""

import dataclasses
import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.dram.system import DramSystem

_LOCK = threading.Lock()
_CACHE = OrderedDict()
_MAX_ENTRIES = 128
_HITS = 0
_MISSES = 0


def trace_fingerprint(physical_addresses):
    """Stable digest of a physical-address trace (content, not identity)."""
    array = np.asarray(physical_addresses, dtype=np.int64)
    digest = hashlib.sha1(array.tobytes()).hexdigest()
    return digest, int(array.size)


def _config_fingerprint(config):
    """Stable digest of the DRAM configuration, or None if there is none.

    Dataclass reprs (including the nested timing dataclass) are
    content-stable and carry the class qualname, so they key safely.  A
    non-dataclass timing object's default repr embeds a memory address --
    unstable across runs and reusable across objects -- so such configs are
    reported as un-keyable and the caller skips the cache.
    """
    if dataclasses.is_dataclass(config) and \
            dataclasses.is_dataclass(config.timing):
        # repro-lint: allow-fingerprint-hygiene (guarded above: only content-stable dataclass reprs reach this line; everything else keys as None)
        return repr(config)
    return None


def baseline_cache_key(config, physical_addresses, request_bytes,
                       outstanding_per_channel):
    """Cache key covering the trace and every DRAM configuration field.

    Returns None when the configuration cannot be keyed safely (see
    :func:`_config_fingerprint`).
    """
    config_key = _config_fingerprint(config)
    if config_key is None:
        return None
    digest, size = trace_fingerprint(physical_addresses)
    return (config_key, request_bytes, outstanding_per_channel, digest,
            size)


def run_baseline_trace(config, physical_addresses, request_bytes=64,
                       outstanding_per_channel=32, use_cache=True):
    """Run (or replay) the DDR4 baseline for a physical-address trace.

    Parameters mirror :meth:`repro.dram.system.DramSystem.run_trace`;
    ``config`` is the :class:`~repro.dram.system.DramSystemConfig`.  With
    ``use_cache`` (the default) the simulation result is memoised.
    """
    global _HITS, _MISSES
    key = None
    if use_cache:
        key = baseline_cache_key(config, physical_addresses, request_bytes,
                                 outstanding_per_channel)
    if key is None:
        return DramSystem(config).run_trace(
            physical_addresses, request_bytes=request_bytes,
            outstanding_per_channel=outstanding_per_channel)
    with _LOCK:
        if key in _CACHE:
            _HITS += 1
            _CACHE.move_to_end(key)
            return _CACHE[key]
    # Simulate outside the lock: two threads racing on the same key at most
    # duplicate the work, they never corrupt the cache.
    result = DramSystem(config).run_trace(
        physical_addresses, request_bytes=request_bytes,
        outstanding_per_channel=outstanding_per_channel)
    with _LOCK:
        _MISSES += 1
        _CACHE[key] = result
        _CACHE.move_to_end(key)
        while len(_CACHE) > _MAX_ENTRIES:
            _CACHE.popitem(last=False)
    return result


def export_baseline_entries():
    """Snapshot the cache as a list of picklable ``(key, result)`` pairs.

    Used by the process execution backend
    (:mod:`repro.core.backend`): a worker process exports the entries its
    channel simulation produced so the parent can merge them back and
    later dispatches (on any backend) replay the stored baselines.
    """
    with _LOCK:
        return list(_CACHE.items())


def merge_baseline_entries(pairs, hits=0, misses=0):
    """Merge worker-side ``(key, result)`` pairs into this process's cache.

    Existing entries win (first simulation of a trace is authoritative;
    re-merging an identical result is a no-op either way), merged entries
    count as freshly used for LRU purposes, and the bound is enforced
    after the merge.  ``hits``/``misses`` fold the workers' counter deltas
    into the process-wide statistics so cache-effectiveness reports stay
    meaningful under the process backend.
    """
    global _HITS, _MISSES
    with _LOCK:
        for key, result in pairs:
            if key not in _CACHE:
                _CACHE[key] = result
            _CACHE.move_to_end(key)
        while len(_CACHE) > _MAX_ENTRIES:
            _CACHE.popitem(last=False)
        _HITS += int(hits)
        _MISSES += int(misses)


def clear_baseline_cache():
    """Drop every memoised baseline result and zero the hit counters."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0


def baseline_cache_stats():
    """Return ``{"entries", "hits", "misses"}`` for the process-wide cache."""
    with _LOCK:
        return {"entries": len(_CACHE), "hits": _HITS, "misses": _MISSES}
