"""Batch-size-aware service-time models for the serving layer.

The cycle simulator is the serving bottleneck: every distinct batch
composition costs a full RecNMP simulation.  The closed-form engine only
ever needed a few dozen batches, but the event engine
(:mod:`repro.serving.events`) is cheap enough to replay hundreds of
thousands of batches -- if their service times do not each cost a cycle
simulation.  A :class:`ServiceTimeModel` decides how a batch's service
time is obtained:

* :class:`ExactServiceModel` -- call
  :meth:`ShardedServingCluster.service_time_us` for every batch, exactly
  as before (memoised by batch content).
* :class:`InterpolatingServiceModel` -- calibrate a (poolings x
  pooling-factor) grid of simulated service times *once* per cluster,
  then answer every batch by bilinear interpolation on its
  ``total_poolings`` and ``mean_pooling_factor``.  Turns an O(batches)
  number of cycle simulations into O(grid), which is what makes
  million-query event runs tractable.

The grid memoisation reuses the keyed-LRU pattern of
:mod:`repro.perf.baseline_cache` via :class:`repro.utils.LRUCache`.
"""

import abc

import numpy as np

from repro.utils.lru import LRUCache


class ServiceTimeModel(abc.ABC):
    """Strategy interface: (cluster, batch) -> service time in us."""

    #: Registry name of the model (``"exact"`` / ``"interp"``).
    name = "service-model"

    @abc.abstractmethod
    def service_time_us(self, cluster, batch):
        """Service time of ``batch`` on ``cluster``, in microseconds."""

    def service_times_us(self, cluster, batches):
        """Vector of per-batch service times (the engine-facing call)."""
        return [self.service_time_us(cluster, batch) for batch in batches]

    def describe(self):
        """Human-readable one-line description of the model."""
        return self.name


class ExactServiceModel(ServiceTimeModel):
    """Simulate every batch composition (the PR-1 behaviour).

    Exact mode's cost is one cycle simulation per distinct batch
    composition, so it scales directly with the simulator hot path and
    the cluster's *node-level* execution backend:
    ``ShardedServingCluster(backend="process")`` (or
    ``"shared-memory"``) fans the per-node shard simulations of each
    batch out to worker processes, so an N-node batch uses up to N
    cores while staying bit-identical to serial.  The compiled
    command-issue kernels plus node-level parallelism are what make
    exact (non-interpolated) service times affordable for long
    event-engine runs.
    """

    name = "exact"

    def service_time_us(self, cluster, batch):
        return cluster.service_time_us(batch)

    def service_times_us(self, cluster, batches):
        """Resolve the whole batch list through the cluster in one call.

        The cluster's batched path fingerprints every batch up front,
        collapses duplicate compositions, answers cache/store hits in
        place and fans only the unique misses out through its node-level
        backend as one flat job list -- bit-identical to the
        one-batch-at-a-time loop, without serialising the event engine
        on each simulation in turn.  Cluster-likes without the batched
        entry point fall back to the base-class loop.
        """
        batched = getattr(cluster, "service_times_us", None)
        if batched is None:
            return super().service_times_us(cluster, batches)
        return batched(batches)


class InterpolatingServiceModel(ServiceTimeModel):
    """Interpolate service times from a calibrated grid of simulations.

    The grid spans (batch size x pooling factor): for every per-query
    request shape observed -- ``b`` poolings per table at ``p`` lookups
    each -- one *row* of batches with ``batch_sizes`` queries of that
    shape is simulated exactly, and every later batch with that shape is
    answered by interpolating its ``total_poolings`` along the row
    (linear extrapolation past the last grid point).  Batches issue one
    SLS request per query per table, so calibration batches are composed
    of real multi-query batches, preserving the per-request dispatch
    overheads a single merged request would hide.

    Parameters
    ----------
    traces:
        Per-table :class:`EmbeddingTrace` list the calibration batches
        are materialised from -- use the same traces (or the same
        generator settings) as the workload being served, so the grid
        preserves the workload's locality structure.
    batch_sizes:
        Queries per calibration batch (the grid's batch-size axis).
    pooling_factors:
        Pooling factors to snap observed batches onto.  ``None`` (the
        default) calibrates one row per distinct observed (rounded)
        pooling factor; a tuple restricts rows to those values and
        interpolates between the two bracketing rows.
    max_grids:
        LRU bound on per-cluster calibration grids held by this model.
    """

    name = "interp"

    def __init__(self, traces, batch_sizes=(1, 2, 4, 8, 16, 32),
                 pooling_factors=None, max_grids=8):
        if not traces:
            raise ValueError("need at least one calibration trace")
        if len(batch_sizes) < 2:
            raise ValueError("need at least two batch-size grid points")
        self.traces = list(traces)
        self.batch_sizes = tuple(sorted(set(int(b) for b in batch_sizes)))
        if any(b <= 0 for b in self.batch_sizes):
            raise ValueError("batch-size grid points must be positive")
        self.pooling_factors = None if pooling_factors is None else \
            tuple(sorted(set(int(p) for p in pooling_factors)))
        self._grids = LRUCache(max_entries=max_grids)
        self._exact_calls = 0
        self._interpolated_calls = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _query_shape(batch):
        """Observed per-request poolings and per-pooling lookups."""
        # Batch classes carry a cached request count; duck-typed batches
        # without one fall back to the object walk.
        num_requests = getattr(batch, "num_requests", None)
        if num_requests is None:
            num_requests = sum(len(query.requests)
                               for query in batch.queries)
        if num_requests == 0:
            raise ValueError(
                "batch carries no SLS requests; cannot derive a "
                "calibration shape for the interpolating service model")
        poolings = max(int(round(batch.total_poolings / num_requests)), 1)
        pooling_factor = max(int(round(batch.mean_pooling_factor)), 1)
        return poolings, pooling_factor

    def _calibration_row(self, cluster, poolings, pooling_factor):
        """Simulated service times over the batch-size grid at one shape."""
        from repro.serving.arrival import queries_from_traces
        from repro.serving.batcher import QueryBatch

        shortest = min(len(trace) for trace in self.traces)
        if poolings * pooling_factor > shortest:
            raise ValueError(
                "calibration traces too short: need %d lookups per table "
                "for a %dx%d request, shortest trace has %d"
                % (poolings * pooling_factor, poolings, pooling_factor,
                   shortest))
        xs, values = [], []
        for batch_size in self.batch_sizes:
            queries = queries_from_traces(
                self.traces, batch_size, [0.0] * batch_size,
                batch_size=poolings, pooling_factor=pooling_factor)
            batch = QueryBatch(queries=queries, open_us=0.0, formed_us=0.0)
            xs.append(float(batch.total_poolings))
            values.append(cluster.service_time_us(batch))
            self._exact_calls += 1
        return np.asarray(xs), np.asarray(values)

    def _grid_for(self, cluster):
        """The per-cluster grid of calibrated rows, keyed by query shape.

        Entries hold a strong reference to their cluster: ``id()`` alone
        could be reused by a new cluster after the old one is collected
        and silently serve a grid calibrated on different hardware.  The
        reference pins at most ``max_grids`` clusters, and the identity
        check recalibrates if an id is ever reused anyway.
        """
        # repro-lint: allow-fingerprint-hygiene (identity memo, not a persisted key: the entry pins a strong reference and the `is cluster` re-check below recalibrates on id reuse)
        key = id(cluster)
        entry = self._grids.get(key)
        if entry is not None and entry[0] is cluster:
            return entry[1]
        grid = {}
        self._grids.put(key, (cluster, grid))
        return grid

    def _row(self, grid, cluster, poolings, pooling_factor):
        key = (poolings, pooling_factor)
        if key not in grid:
            grid[key] = self._calibration_row(cluster, poolings,
                                              pooling_factor)
        return grid[key]

    @staticmethod
    def _interp_row(row, total_poolings):
        """Row lookup with linear extrapolation past the last grid point."""
        xs, values = row
        if total_poolings > xs[-1]:
            slope = (values[-1] - values[-2]) / (xs[-1] - xs[-2])
            return float(values[-1] + slope * (total_poolings - xs[-1]))
        return float(np.interp(total_poolings, xs, values))

    @staticmethod
    def _interp_row_vector(row, total_poolings):
        """Vectorised :meth:`_interp_row` over a total-poolings array.

        ``np.interp`` evaluates each element with the same operations as
        the scalar call, and the extrapolation branch applies the same
        slope expression, so every element matches the scalar path
        bitwise.
        """
        xs, values = row
        result = np.interp(total_poolings, xs, values)
        beyond = total_poolings > xs[-1]
        if beyond.any():
            slope = (values[-1] - values[-2]) / (xs[-1] - xs[-2])
            result[beyond] = values[-1] \
                + slope * (total_poolings[beyond] - xs[-1])
        return result

    def _pf_rows_for(self, observed_pf):
        """The pooling-factor row(s) answering an observed factor."""
        if self.pooling_factors is None:
            return (observed_pf,)
        # Bracket the observed pooling factor with permitted rows; clamp
        # to the nearest row outside the grid (never extrapolate across
        # the whole pooling-factor range).
        below = [p for p in self.pooling_factors if p <= observed_pf]
        above = [p for p in self.pooling_factors if p >= observed_pf]
        if not below:
            return (above[0],)
        if not above:
            return (below[-1],)
        return tuple(sorted({below[-1], above[0]}))

    def service_time_us(self, cluster, batch):
        grid = self._grid_for(cluster)
        poolings, observed_pf = self._query_shape(batch)
        total_poolings = float(batch.total_poolings)
        pf_rows = self._pf_rows_for(observed_pf)
        self._interpolated_calls += 1
        if len(pf_rows) == 1:
            return self._interp_row(
                self._row(grid, cluster, poolings, pf_rows[0]),
                total_poolings)
        low, high = pf_rows
        value_low = self._interp_row(
            self._row(grid, cluster, poolings, low), total_poolings)
        value_high = self._interp_row(
            self._row(grid, cluster, poolings, high), total_poolings)
        weight = (observed_pf - low) / (high - low)
        return value_low + weight * (value_high - value_low)

    def service_times_us(self, cluster, batches):
        """Grouped-and-vectorised batch answering (the engine-facing
        call).

        One pass over the batches reads their (cached) shape aggregates
        and calibrates any missing grid rows in first-encounter order --
        exactly the calibration sequence of the one-batch-at-a-time
        loop -- then batches sharing a shape are answered with one
        vectorised row interpolation each.  Values are bit-identical to
        the scalar path (:meth:`_interp_row_vector`).
        """
        batches = list(batches)
        if not batches:
            return []
        grid = self._grid_for(cluster)
        shapes = []
        total_poolings = np.empty(len(batches), dtype=np.float64)
        for index, batch in enumerate(batches):
            poolings, observed_pf = self._query_shape(batch)
            pf_rows = self._pf_rows_for(observed_pf)
            for pf_row in pf_rows:
                self._row(grid, cluster, poolings, pf_row)
            self._interpolated_calls += 1
            shapes.append((poolings, pf_rows, observed_pf))
            total_poolings[index] = float(batch.total_poolings)
        groups = {}
        for index, shape in enumerate(shapes):
            groups.setdefault(shape, []).append(index)
        out = np.empty(len(batches), dtype=np.float64)
        for (poolings, pf_rows, observed_pf), indices in groups.items():
            points = total_poolings[indices]
            if len(pf_rows) == 1:
                values = self._interp_row_vector(
                    grid[(poolings, pf_rows[0])], points)
            else:
                low, high = pf_rows
                value_low = self._interp_row_vector(
                    grid[(poolings, low)], points)
                value_high = self._interp_row_vector(
                    grid[(poolings, high)], points)
                weight = (observed_pf - low) / (high - low)
                values = value_low + weight * (value_high - value_low)
            out[indices] = values
        return out.tolist()

    def stats(self):
        """Calibration-vs-interpolation call accounting."""
        return {"exact_calls": self._exact_calls,
                "interpolated_calls": self._interpolated_calls,
                "grids": len(self._grids)}

    def __getstate__(self):
        """Pickle without the calibration grids.

        Grid entries pin their clusters (see :meth:`_grid_for`), so a
        pickled model would drag whole clusters -- backends, pools and
        all -- across the process boundary.  A model shipped to a sweep
        worker therefore starts cold and recalibrates against the
        worker's own cluster, which is exactly the grid it needs.
        """
        state = self.__dict__.copy()
        state["_grids"] = self._grids.max_entries
        return state

    def __setstate__(self, state):
        state = dict(state)
        state["_grids"] = LRUCache(max_entries=state["_grids"])
        self.__dict__.update(state)


#: Model registry: name -> class (interp needs constructor arguments, so
#: resolve_service_model only instantiates the argument-free exact model).
SERVICE_MODELS = {"exact": ExactServiceModel,
                  "interp": InterpolatingServiceModel}


def resolve_service_model(model):
    """Normalise a ``service_model=`` argument into a model instance.

    Accepts ``None`` or ``"exact"`` (a fresh :class:`ExactServiceModel`),
    a ready :class:`ServiceTimeModel` instance, or a model class with a
    zero-argument constructor.  ``"interp"`` must be passed as an
    instance because it needs calibration traces.
    """
    if model is None:
        return ExactServiceModel()
    if isinstance(model, ServiceTimeModel):
        return model
    if isinstance(model, type) and issubclass(model, ServiceTimeModel):
        return model()
    if model == "exact":
        return ExactServiceModel()
    if model == "interp":
        raise ValueError("the interpolating model needs calibration traces;"
                         " pass an InterpolatingServiceModel instance")
    raise ValueError("unknown service model %r; available: %s"
                     % (model, ", ".join(sorted(SERVICE_MODELS))))
