"""FC cache-contention under model co-location (Section V-B, Fig. 17).

Co-locating several recommendation models on one server raises throughput
but degrades latency: the streaming SLS accesses evict reusable FC weights
from the shared LLC, so the co-located FC operators slow down.  The amount
of degradation grows with the FC working-set size (TopFC of RM2-large spills
into the LLC), the co-location degree, and the pooling factor (more SLS
bytes per inference).  Offloading SLS to RecNMP removes that traffic from
the cache hierarchy, recovering most of the loss (up to ~30 % for large
TopFC layers, ~4 % for FCs that fit in L2).

The model is a cache-pressure interpolation calibrated to those published
end-points; it provides both the baseline degradation and the RecNMP relief.
"""

from dataclasses import dataclass

from repro.perf.system import SKYLAKE_SYSTEM


@dataclass
class ColocationResult:
    """FC slowdown of one configuration (relative execution times)."""

    fc_name: str
    colocation_degree: int
    pooling_factor: int
    baseline_slowdown: float     # co-located FC time / isolated FC time (CPU)
    recnmp_slowdown: float       # same with SLS offloaded to RecNMP

    @property
    def recnmp_improvement(self):
        """Fractional FC latency reduction RecNMP provides at this point."""
        if self.baseline_slowdown <= 0:
            return 0.0
        return 1.0 - self.recnmp_slowdown / self.baseline_slowdown

    def as_dict(self):
        return {
            "fc_name": self.fc_name,
            "colocation_degree": self.colocation_degree,
            "pooling_factor": self.pooling_factor,
            "baseline_slowdown": self.baseline_slowdown,
            "recnmp_slowdown": self.recnmp_slowdown,
            "recnmp_improvement": self.recnmp_improvement,
        }


@dataclass
class ColocationModel:
    """Cache-contention model for co-located FC operators.

    Attributes
    ----------
    system:
        Host system parameters (L2 / LLC capacities).
    max_llc_degradation:
        Worst-case FC slowdown (minus one) when the FC working set lives in
        the LLC and contention is maximal (Fig. 17(b): ~30 %).
    l2_resident_degradation:
        Residual slowdown for FCs whose weights fit in L2 (~4 %).
    sls_pressure_per_model:
        How much one co-located model's SLS stream contributes to LLC
        pressure (saturating).
    pooling_reference:
        Pooling factor at which the calibration holds (80 in the paper).
    recnmp_residual_fraction:
        Fraction of the contention that remains after offloading SLS to
        RecNMP (pooled outputs still traverse the cache).
    """

    system: object = None
    max_llc_degradation: float = 0.32
    l2_resident_degradation: float = 0.04
    sls_pressure_per_model: float = 0.35
    pooling_reference: int = 80
    recnmp_residual_fraction: float = 0.15

    def __post_init__(self):
        if self.system is None:
            self.system = SKYLAKE_SYSTEM
        if not 0 <= self.max_llc_degradation < 1:
            raise ValueError("max_llc_degradation must be in [0, 1)")
        if not 0 <= self.l2_resident_degradation <= self.max_llc_degradation:
            raise ValueError("l2_resident_degradation must be in "
                             "[0, max_llc_degradation]")
        if not 0 <= self.recnmp_residual_fraction <= 1:
            raise ValueError("recnmp_residual_fraction must be in [0, 1]")

    # ------------------------------------------------------------------ #
    def _cache_sensitivity(self, fc_weight_bytes):
        """0 (fits in L2, insensitive) .. 1 (deep in LLC, fully sensitive)."""
        l2 = self.system.l2_bytes
        llc = self.system.llc_bytes
        if fc_weight_bytes <= l2:
            return 0.0
        if fc_weight_bytes >= llc:
            return 1.0
        # Log interpolation between the L2 and LLC capacities.
        import math

        return (math.log(fc_weight_bytes / l2)
                / math.log(llc / l2))

    def _contention_pressure(self, colocation_degree, pooling_factor):
        """0 .. 1 saturating pressure from co-located SLS streams."""
        if colocation_degree < 1:
            raise ValueError("colocation_degree must be >= 1")
        if pooling_factor <= 0:
            raise ValueError("pooling_factor must be positive")
        competing = colocation_degree - 1
        pooling_scale = min(2.0, pooling_factor / self.pooling_reference)
        raw = competing * self.sls_pressure_per_model * pooling_scale
        return raw / (1.0 + raw)

    # ------------------------------------------------------------------ #
    def baseline_slowdown(self, fc_weight_bytes, colocation_degree,
                          pooling_factor=80):
        """Co-located / isolated FC time on the CPU baseline (>= 1)."""
        sensitivity = self._cache_sensitivity(fc_weight_bytes)
        pressure = self._contention_pressure(colocation_degree,
                                             pooling_factor)
        degradation = (self.l2_resident_degradation
                       + (self.max_llc_degradation
                          - self.l2_resident_degradation) * sensitivity)
        return 1.0 + degradation * pressure / \
            self._contention_pressure(8, self.pooling_reference)

    def recnmp_slowdown(self, fc_weight_bytes, colocation_degree,
                        pooling_factor=80):
        """Co-located / isolated FC time with SLS offloaded to RecNMP."""
        baseline = self.baseline_slowdown(fc_weight_bytes, colocation_degree,
                                          pooling_factor)
        return 1.0 + (baseline - 1.0) * self.recnmp_residual_fraction

    def fc_speedup_from_offload(self, fc_weight_bytes, colocation_degree,
                                pooling_factor=80):
        """FC speedup obtained by offloading SLS (baseline / RecNMP time)."""
        return (self.baseline_slowdown(fc_weight_bytes, colocation_degree,
                                       pooling_factor)
                / self.recnmp_slowdown(fc_weight_bytes, colocation_degree,
                                       pooling_factor))

    # ------------------------------------------------------------------ #
    def evaluate(self, fc_name, fc_weight_bytes, colocation_degrees,
                 pooling_factor=80):
        """Fig. 17-style sweep over co-location degrees for one FC layer."""
        results = []
        for degree in colocation_degrees:
            results.append(ColocationResult(
                fc_name=fc_name,
                colocation_degree=degree,
                pooling_factor=pooling_factor,
                baseline_slowdown=self.baseline_slowdown(
                    fc_weight_bytes, degree, pooling_factor),
                recnmp_slowdown=self.recnmp_slowdown(
                    fc_weight_bytes, degree, pooling_factor),
            ))
        return results
