"""End-to-end model speedup composition (Section V-C, Fig. 18).

The paper estimates end-to-end inference speedup by weighting the speedup of
the offloaded SLS operators and the (slightly accelerated) non-SLS operators
by their baseline time fractions -- an Amdahl-style composition.  This
module implements that composition and the latency/throughput trade-off
curves under model co-location (Fig. 18(c)).
"""

from dataclasses import dataclass

from repro.perf.colocation import ColocationModel
from repro.perf.operator_latency import OperatorLatencyModel
from repro.utils.stats import weighted_harmonic_speedup


@dataclass
class ModelSpeedup:
    """End-to-end speedup estimate for one model configuration."""

    model_name: str
    batch_size: int
    sls_fraction: float
    sls_speedup: float
    non_sls_speedup: float
    end_to_end_speedup: float

    def as_dict(self):
        return {
            "model": self.model_name,
            "batch_size": self.batch_size,
            "sls_fraction": self.sls_fraction,
            "sls_speedup": self.sls_speedup,
            "non_sls_speedup": self.non_sls_speedup,
            "end_to_end_speedup": self.end_to_end_speedup,
        }


class EndToEndModel:
    """Compose operator-level speedups into model-level speedups."""

    def __init__(self, latency_model=None, colocation_model=None):
        self.latency_model = latency_model or OperatorLatencyModel()
        self.colocation_model = colocation_model or ColocationModel()

    # ------------------------------------------------------------------ #
    def speedup(self, config, batch_size, sls_speedup, colocation_degree=1):
        """End-to-end speedup of one model at one batch size.

        ``sls_speedup`` is the memory-latency speedup of the offloaded SLS
        operators (from the RecNMP simulator, e.g. 9.8x for the 8-rank
        optimised design).  Non-SLS operators gain the cache-contention
        relief of Fig. 17 when models are co-located.
        """
        if sls_speedup <= 0:
            raise ValueError("sls_speedup must be positive")
        breakdown = self.latency_model.breakdown(config, batch_size)
        sls_fraction = breakdown.sls_fraction
        non_sls_fraction = 1.0 - sls_fraction
        non_sls_speedup = 1.0
        if colocation_degree > 1:
            non_sls_speedup = self.colocation_model.fc_speedup_from_offload(
                config.fc_weight_bytes(), colocation_degree,
                config.pooling_factor)
        end_to_end = weighted_harmonic_speedup(
            [sls_fraction, non_sls_fraction],
            [sls_speedup, non_sls_speedup])
        return ModelSpeedup(
            model_name=config.name,
            batch_size=batch_size,
            sls_fraction=sls_fraction,
            sls_speedup=sls_speedup,
            non_sls_speedup=non_sls_speedup,
            end_to_end_speedup=end_to_end,
        )

    def speedup_sweep(self, configs, batch_sizes, sls_speedup,
                      colocation_degree=1):
        """Fig. 18(a)/(b)-style sweep over models and batch sizes."""
        return [self.speedup(config, batch, sls_speedup, colocation_degree)
                for config in configs for batch in batch_sizes]

    # ------------------------------------------------------------------ #
    def rank_config_speedups(self, config, batch_size, rank_speedups):
        """Speedups for several RecNMP rank configurations.

        ``rank_speedups`` maps a configuration label (e.g. ``"2-rank"``) to
        its SLS memory-latency speedup; returns a matching dictionary of
        end-to-end speedups (Fig. 18(a)).
        """
        return {
            label: self.speedup(config, batch_size, sls_speedup)
            for label, sls_speedup in rank_speedups.items()
        }


def latency_throughput_curve(latency_model, config, batch_size,
                             colocation_degrees, sls_speedup=1.0,
                             locality_bonus=1.0, colocation_model=None,
                             use_recnmp=False,
                             total_sls_bandwidth_gbps=40.0):
    """Latency-vs-throughput trade-off under co-location (Fig. 18(c)).

    Co-locating ``m`` models multiplies throughput by up to ``m`` while the
    shared memory bandwidth and cache contention stretch each model's
    latency.  A single model worker extracts only part of the system
    bandwidth (the latency model's ``sls_effective_gbps``), so co-location
    first raises throughput almost linearly; once the aggregate demand hits
    ``total_sls_bandwidth_gbps`` the per-model share shrinks and latency
    degrades -- the trade-off the paper's Fig. 18(c) shows.  Returns a list
    of points ``{"colocation": m, "latency_us": ...,
    "throughput_inferences_per_s": ...}``.

    ``locality_bonus`` models the latency benefit of production traces over
    random ones on the host (cache hits reduce effective SLS bytes); the
    bonus fades as co-location grows because the combined working set
    overwhelms the cache -- matching the paper's observation that the
    production-trace advantage wears off at high co-location.
    """
    colocation_model = colocation_model or ColocationModel()
    points = []
    for degree in colocation_degrees:
        if degree < 1:
            raise ValueError("colocation degrees must be >= 1")
        per_model_gbps = total_sls_bandwidth_gbps / degree
        bandwidth_share = min(
            1.0, per_model_gbps / latency_model.sls_effective_gbps)
        effective_bonus = 1.0 + (locality_bonus - 1.0) / degree
        breakdown = latency_model.breakdown(
            config, batch_size, sls_bandwidth_scale=bandwidth_share)
        sls_us = breakdown.sls_us / effective_bonus
        fc_slowdown = colocation_model.baseline_slowdown(
            config.fc_weight_bytes(), degree, config.pooling_factor)
        fc_us = breakdown.fc_us * fc_slowdown
        if use_recnmp:
            # The NMP's internal bandwidth is shared across co-located models
            # exactly like the channel bandwidth, which the bandwidth_share
            # factor above already captures; the offload speedup applies on
            # top of that share.
            sls_us = sls_us / sls_speedup
            fc_slowdown_nmp = colocation_model.recnmp_slowdown(
                config.fc_weight_bytes(), degree, config.pooling_factor)
            fc_us = breakdown.fc_us * fc_slowdown_nmp
        latency_us = sls_us + fc_us + breakdown.other_us
        throughput = degree * batch_size / (latency_us * 1e-6)
        points.append({
            "colocation": degree,
            "latency_us": latency_us,
            "throughput_inferences_per_s": throughput,
        })
    return points
