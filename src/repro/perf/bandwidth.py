"""Memory-bandwidth saturation model (Section II-E, Fig. 6).

The paper shows that parallel SLS threads saturate the memory bandwidth of
the 4-channel DDR4-2400 system: the theoretical peak is 76.8 GB/s, Intel MLC
measures an empirical ceiling of 62.1 GB/s, and at batch size 256 the SLS
threads reach 67.4 % of the peak (51.8 GB/s) around 30 threads, after which
memory latency climbs steeply.

The model captures that shape analytically: per-thread demand grows with
batch size, aggregate bandwidth follows a saturating curve bounded by the
MLC ceiling, and access latency grows super-linearly once utilisation
approaches saturation (a standard M/M/1-style queueing knee).
"""

from dataclasses import dataclass

from repro.perf.system import SKYLAKE_SYSTEM


@dataclass
class BandwidthSaturationModel:
    """Aggregate-bandwidth and latency model for parallel SLS threads.

    Attributes
    ----------
    system:
        Host system parameters (peak and measured bandwidth).
    per_thread_gbps_at_batch_1:
        Bandwidth demand of one SLS thread at batch size 1.
    batch_scaling_exponent:
        Demand grows roughly linearly with batch size but with diminishing
        returns from fixed per-operator overheads (exponent < 1).
    unloaded_latency_ns:
        DRAM access latency at low utilisation.
    """

    system: object = None
    per_thread_gbps_at_batch_1: float = 0.05
    batch_scaling_exponent: float = 0.85
    unloaded_latency_ns: float = 80.0

    def __post_init__(self):
        if self.system is None:
            self.system = SKYLAKE_SYSTEM
        if self.per_thread_gbps_at_batch_1 <= 0:
            raise ValueError("per_thread_gbps_at_batch_1 must be positive")
        if not 0 < self.batch_scaling_exponent <= 1:
            raise ValueError("batch_scaling_exponent must be in (0, 1]")
        if self.unloaded_latency_ns <= 0:
            raise ValueError("unloaded_latency_ns must be positive")

    # ------------------------------------------------------------------ #
    def thread_demand_gbps(self, batch_size):
        """Bandwidth demand of one SLS thread at a given batch size."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return (self.per_thread_gbps_at_batch_1
                * batch_size ** self.batch_scaling_exponent)

    def achieved_bandwidth_gbps(self, num_threads, batch_size):
        """Aggregate bandwidth achieved by ``num_threads`` SLS threads.

        The demand curve saturates smoothly at the MLC-measured ceiling
        (contention prevents reaching the theoretical peak).
        """
        if num_threads < 0:
            raise ValueError("num_threads must be non-negative")
        if num_threads == 0:
            return 0.0
        demand = num_threads * self.thread_demand_gbps(batch_size)
        ceiling = self.system.measured_bandwidth_gbps
        # Smooth saturation: achieved = ceiling * demand / (demand + ceiling/2)
        # approaches the ceiling asymptotically and is ~linear at low demand.
        return ceiling * demand / (demand + ceiling / 2.0)

    def utilization(self, num_threads, batch_size):
        """Fraction of the theoretical peak bandwidth consumed."""
        return (self.achieved_bandwidth_gbps(num_threads, batch_size)
                / self.system.peak_bandwidth_gbps)

    def access_latency_ns(self, num_threads, batch_size):
        """Average memory access latency under load (queueing knee).

        Latency stays near the unloaded value until utilisation of the
        measured ceiling approaches 1, then grows as 1 / (1 - u).
        """
        if num_threads == 0:
            return self.unloaded_latency_ns
        achieved = self.achieved_bandwidth_gbps(num_threads, batch_size)
        u = min(achieved / self.system.measured_bandwidth_gbps, 0.995)
        return self.unloaded_latency_ns / (1.0 - u)

    # ------------------------------------------------------------------ #
    def saturation_point(self, batch_size, threshold=0.674,
                         max_threads=72):
        """Smallest thread count whose utilisation exceeds ``threshold``.

        The default threshold is the 67.4 %-of-peak point the paper calls the
        saturation point (batch 256, ~30 threads).  Returns ``None`` if the
        threshold is never reached within ``max_threads``.
        """
        for threads in range(1, max_threads + 1):
            if self.utilization(threads, batch_size) >= threshold:
                return threads
        return None

    def sweep(self, thread_counts, batch_sizes):
        """Bandwidth surface over thread counts and batch sizes.

        Returns ``{batch_size: [(threads, achieved_gbps), ...]}``.
        """
        return {
            batch: [(threads, self.achieved_bandwidth_gbps(threads, batch))
                    for threads in thread_counts]
            for batch in batch_sizes
        }
