"""Analytical CPU/system performance models.

These models reproduce the *real-system* half of the paper's methodology
(Fig. 13): operator latency breakdowns on the Skylake baseline, roofline
analysis, memory-bandwidth saturation, FC cache-contention under model
co-location, and the end-to-end speedup composition that combines the SLS
memory-latency speedups from the cycle simulator with the non-SLS operator
speedups.
"""

from repro.perf.baseline_cache import (
    baseline_cache_stats,
    clear_baseline_cache,
    run_baseline_trace,
)
from repro.perf.service_model import (
    ExactServiceModel,
    InterpolatingServiceModel,
    ServiceTimeModel,
    resolve_service_model,
)
from repro.perf.system import SystemParameters, SKYLAKE_SYSTEM
from repro.perf.roofline import RooflineModel, RooflinePoint
from repro.perf.bandwidth import BandwidthSaturationModel
from repro.perf.operator_latency import (
    OperatorLatencyModel,
    OperatorBreakdown,
)
from repro.perf.colocation import ColocationModel, ColocationResult
from repro.perf.end_to_end import (
    EndToEndModel,
    ModelSpeedup,
    latency_throughput_curve,
)

__all__ = [
    "baseline_cache_stats",
    "clear_baseline_cache",
    "run_baseline_trace",
    "ExactServiceModel",
    "InterpolatingServiceModel",
    "ServiceTimeModel",
    "resolve_service_model",
    "SystemParameters",
    "SKYLAKE_SYSTEM",
    "RooflineModel",
    "RooflinePoint",
    "BandwidthSaturationModel",
    "OperatorLatencyModel",
    "OperatorBreakdown",
    "ColocationModel",
    "ColocationResult",
    "EndToEndModel",
    "ModelSpeedup",
    "latency_throughput_curve",
]
