"""Persistent cross-run service-time store (the disk tier under the LRU).

The serving cluster memoises batch service times in a bounded in-memory
LRU, so a QPS sweep only simulates new batch *compositions* -- but every
process start begins cold, and a re-run of ``bench_slo_admission.py`` or
a repeated CLI ``serve`` pays the full set of exact cycle simulations
again.  :class:`ServiceTimeStore` removes that: a small sqlite database
(one file, stdlib only) keyed by

``(cluster/system config fingerprint, kernel flavor, batch content
fingerprint)``

so a warm store answers a repeated run with *zero* exact simulations.
The config fingerprint covers everything that changes a batch's service
time -- node system, node count, build overrides, sharder placement --
and the kernel flavor is part of the key because different command-issue
kernels are only bit-identical within a repo version; a flavor or config
mismatch is therefore a plain miss, never a wrong answer.  A schema or
repo-version bump drops the stored entries wholesale (explicit
invalidation), and every consumer exposes an escape hatch
(``service_store=None`` / CLI ``--no-service-store``).

Store failures are deliberately non-fatal: a corrupt or unwritable store
degrades to a miss (and stops being written), never crashes a run --
this is a cache tier, not a source of truth.
"""

import hashlib
import os
import sqlite3
from pathlib import Path

#: Bump to invalidate every stored service time (e.g. when simulator
#: semantics change in a way that is not captured by the config/flavor
#: key).  Stored under the ``meta`` table; a mismatch drops the entries.
SCHEMA_VERSION = 1

#: Environment variable naming the directory the default store lives in.
STORE_DIR_ENV = "REPRO_SERVICE_STORE_DIR"

#: Filename of the default store inside the resolved cache directory.
STORE_FILENAME = "service_times.sqlite"


def default_store_path():
    """The default on-disk location of the service-time store.

    ``$REPRO_SERVICE_STORE_DIR/service_times.sqlite`` when the variable
    is set, else the conventional per-user cache directory
    (``$XDG_CACHE_HOME`` or ``~/.cache``) under ``repro/``.
    """
    env_dir = os.environ.get(STORE_DIR_ENV)
    if env_dir:
        return Path(env_dir) / STORE_FILENAME
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro" / STORE_FILENAME


def stable_fingerprint(value):
    """Content-stable digest of a (nested) configuration value.

    ``repr`` alone is unsafe for callables -- the default function repr
    embeds a memory address that changes every run -- so callables are
    rendered as ``module.qualname`` (stable for module-level functions
    and bound methods, which is what the picklable-config contract of
    the process backends already requires).  Dicts render in sorted key
    order so construction order never changes the key.
    """
    return hashlib.sha1(_stable_repr(value).encode()).hexdigest()


def _stable_repr(value):
    if callable(value):
        self_obj = getattr(value, "__self__", None)
        prefix = "" if self_obj is None else \
            "%s." % _stable_repr(type(self_obj))
        return "<callable %s%s.%s>" % (
            prefix, getattr(value, "__module__", "?"),
            getattr(value, "__qualname__", type(value).__name__))
    if isinstance(value, dict):
        return "{%s}" % ", ".join(
            "%s: %s" % (_stable_repr(k), _stable_repr(value[k]))
            for k in sorted(value, key=_stable_repr))
    if isinstance(value, (list, tuple)):
        body = ", ".join(_stable_repr(v) for v in value)
        return "[%s]" % body if isinstance(value, list) \
            else "(%s)" % body
    # repro-lint: allow-fingerprint-hygiene (scalar-leaf fallback: str, int, float, bool and None all have content-stable reprs)
    return repr(value)


def batch_key_digest(batch_key):
    """Stable digest of a cluster service-cache key.

    The cluster's in-memory key is a tuple of per-query content
    fingerprints (hex strings), optionally paired with the per-request
    node assignment for stateful sharders -- both repr-stable -- so one
    sha1 over the repr is a safe fixed-size column value.
    """
    # repro-lint: allow-fingerprint-hygiene (keys are tuples of hex-string fingerprints and ints, repr-stable by construction)
    return hashlib.sha1(repr(batch_key).encode()).hexdigest()


class ServiceTimeStore:
    """Sqlite-backed persistent map of batch service times.

    Parameters
    ----------
    path:
        Database file location; parent directories are created.  ``None``
        resolves :func:`default_store_path`.
    """

    def __init__(self, path=None):
        self.path = Path(path) if path is not None else default_store_path()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._connection = None
        self._broken = False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._connection = sqlite3.connect(
                str(self.path), timeout=30.0, isolation_level=None)
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA busy_timeout=30000")
            self._ensure_schema()
        except Exception:  # repro-lint: allow-broad-except-audit (an unusable store degrades to a permanent miss, never a crash)
            self._broken = True
            if self._connection is not None:
                try:
                    self._connection.close()
                except Exception:  # repro-lint: allow-broad-except-audit (best-effort close of a connection already known to be broken)
                    pass
                self._connection = None

    # ------------------------------------------------------------------ #
    def _ensure_schema(self):
        con = self._connection
        con.execute("CREATE TABLE IF NOT EXISTS meta "
                    "(key TEXT PRIMARY KEY, value TEXT)")
        row = con.execute("SELECT value FROM meta WHERE key = "
                          "'schema_version'").fetchone()
        if row is not None and int(row[0]) != SCHEMA_VERSION:
            # Version bump: the stored entries are no longer trusted.
            con.execute("DROP TABLE IF EXISTS service_times")
        con.execute(
            "CREATE TABLE IF NOT EXISTS service_times ("
            " config TEXT NOT NULL,"
            " flavor TEXT NOT NULL,"
            " batch TEXT NOT NULL,"
            " service_us REAL NOT NULL,"
            " PRIMARY KEY (config, flavor, batch))")
        con.execute("INSERT OR REPLACE INTO meta VALUES "
                    "('schema_version', ?)", (str(SCHEMA_VERSION),))

    def _flavor(self):
        from repro.core import kernels

        return kernels.active_flavor()

    # ------------------------------------------------------------------ #
    def get(self, config_fingerprint, batch_key):
        """Stored service time for a batch, or ``None`` on a miss."""
        if self._broken:
            self._misses += 1
            return None
        try:
            row = self._connection.execute(
                "SELECT service_us FROM service_times WHERE config = ? "
                "AND flavor = ? AND batch = ?",
                (config_fingerprint, self._flavor(),
                 batch_key_digest(batch_key))).fetchone()
        except Exception:  # repro-lint: allow-broad-except-audit (a failing read degrades to a miss and marks the store broken)
            self._broken = True
            row = None
        if row is None:
            self._misses += 1
            return None
        self._hits += 1
        return float(row[0])

    def put(self, config_fingerprint, batch_key, service_us):
        """Record one batch's service time (idempotent)."""
        self.put_many(config_fingerprint, [(batch_key, service_us)])

    def put_many(self, config_fingerprint, pairs):
        """Record ``(batch_key, service_us)`` pairs in one transaction."""
        if self._broken:
            return
        rows = [(config_fingerprint, self._flavor(),
                 batch_key_digest(batch_key), float(service_us))
                for batch_key, service_us in pairs]
        if not rows:
            return
        try:
            self._connection.executemany(
                "INSERT OR REPLACE INTO service_times VALUES (?, ?, ?, ?)",
                rows)
        except Exception:  # repro-lint: allow-broad-except-audit (a failing write is dropped and marks the store broken; callers never crash a run over the cache)
            self._broken = True
            return
        self._puts += len(rows)

    def merge_counters(self, hits=0, misses=0, puts=0):
        """Fold a sweep worker's hit/miss/put deltas into this store.

        Workers open their own connection at the same path, so their
        *entries* are already visible here; only the counters need to
        travel back for the parent's reported statistics to cover the
        whole run.
        """
        self._hits += int(hits)
        self._misses += int(misses)
        self._puts += int(puts)

    def invalidate(self, config_fingerprint=None):
        """Drop stored entries -- one configuration's, or all of them."""
        if self._broken:
            return
        try:
            if config_fingerprint is None:
                self._connection.execute("DELETE FROM service_times")
            else:
                self._connection.execute(
                    "DELETE FROM service_times WHERE config = ?",
                    (config_fingerprint,))
        except Exception:  # repro-lint: allow-broad-except-audit (a failing invalidate marks the store broken so stale entries can never be served)
            self._broken = True

    def __len__(self):
        if self._broken:
            return 0
        try:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM service_times").fetchone()
        except Exception:  # repro-lint: allow-broad-except-audit (a failing count reports an empty store and marks it broken)
            self._broken = True
            return 0
        return int(row[0])

    def stats(self):
        """``{"path", "entries", "hits", "misses", "puts"}`` snapshot."""
        return {"path": str(self.path),
                "entries": len(self),
                "hits": self._hits,
                "misses": self._misses,
                "puts": self._puts}

    def close(self):
        """Release the database connection (idempotent)."""
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:  # repro-lint: allow-broad-except-audit (close is best-effort; the store is marked broken either way)
                pass
            self._connection = None
            self._broken = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def describe(self):
        state = "broken" if self._broken and self._connection is None \
            else "open"
        return "service-store(%s, %s)" % (self.path, state)

    def __getstate__(self):
        """Pickle as the path alone: connections never cross processes.

        A sweep worker that receives a store reopens it from the path --
        sqlite's WAL journal and busy timeout make concurrent
        worker/parent access safe.
        """
        return {"path": str(self.path)}

    def __setstate__(self, state):
        self.__init__(state["path"])


def resolve_service_store(store):
    """Normalise a ``service_store=`` argument.

    ``None`` disables the disk tier (the escape hatch), a ready
    :class:`ServiceTimeStore` is used as-is, ``True``/``"default"``
    opens the default-path store, and a string or path opens a store at
    that file.
    """
    if store is None:
        return None
    if isinstance(store, ServiceTimeStore):
        return store
    if store is True or store == "default":
        return ServiceTimeStore()
    if isinstance(store, (str, Path)):
        return ServiceTimeStore(store)
    raise ValueError("unknown service store %r; pass None, a path, "
                     "'default', or a ServiceTimeStore instance" % (store,))
