"""Parameters of the real-system evaluation platform (Table I).

The paper's baseline is a single-socket 18-core Intel Skylake server at
1.6 GHz with 64 GB of DDR4-2400 over 4 channels: 0.98 TFLOP/s of FP32
compute, 76.8 GB/s of theoretical memory bandwidth, 62.1 GB/s measured with
Intel MLC, and a 32 KB L1 / 1 MB L2 / 24.75 MB LLC cache hierarchy.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemParameters:
    """Host CPU and memory-system parameters used by the analytical models."""

    num_cores: int = 18
    frequency_ghz: float = 1.6
    peak_flops: float = 0.98e12
    peak_bandwidth_gbps: float = 76.8
    measured_bandwidth_gbps: float = 62.1
    l1_kb: float = 32.0
    l2_mb: float = 1.0
    llc_mb: float = 24.75
    num_channels: int = 4
    ranks_per_channel: int = 2

    def __post_init__(self):
        for name in ("num_cores", "frequency_ghz", "peak_flops",
                     "peak_bandwidth_gbps", "measured_bandwidth_gbps",
                     "l1_kb", "l2_mb", "llc_mb", "num_channels",
                     "ranks_per_channel"):
            if getattr(self, name) <= 0:
                raise ValueError("%s must be positive" % name)
        if self.measured_bandwidth_gbps > self.peak_bandwidth_gbps:
            raise ValueError("measured bandwidth cannot exceed the peak")

    @property
    def machine_balance(self):
        """Operational intensity (FLOP/byte) at the roofline ridge point."""
        return self.peak_flops / (self.peak_bandwidth_gbps * 1e9)

    @property
    def per_core_flops(self):
        return self.peak_flops / self.num_cores

    @property
    def llc_bytes(self):
        return int(self.llc_mb * 1024 * 1024)

    @property
    def l2_bytes(self):
        return int(self.l2_mb * 1024 * 1024)


#: The 18-core Skylake configuration of Table I.
SKYLAKE_SYSTEM = SystemParameters()
