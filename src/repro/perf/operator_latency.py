"""CPU operator latency model (Section II-C, Fig. 4).

The model estimates the per-batch execution time of the three operator
groups of a DLRM inference on the Skylake baseline:

* **SLS** -- bandwidth-bound: bytes gathered divided by the effective
  per-worker memory bandwidth.
* **FC** (BottomFC + TopFC) -- roofline-shaped: a weight-streaming term that
  is paid once per batch (weights read through the cache hierarchy) plus a
  compute term that grows with batch size.
* **Other** -- framework overhead, feature interaction, concatenation; a
  small fixed plus per-sample cost.

The absolute numbers are calibrated to a single model worker on the
18-core Skylake of Table I; the quantities the paper's figures rely on --
the *fraction* of time in SLS, how it grows with batch size and table
count -- follow from the structure of the model.
"""

from dataclasses import dataclass, field

from repro.dlrm.config import ModelConfig
from repro.perf.system import SKYLAKE_SYSTEM


@dataclass
class OperatorBreakdown:
    """Per-operator latency of one inference batch (microseconds)."""

    model_name: str
    batch_size: int
    sls_us: float
    fc_us: float
    other_us: float

    @property
    def total_us(self):
        return self.sls_us + self.fc_us + self.other_us

    @property
    def sls_fraction(self):
        if self.total_us <= 0:
            return 0.0
        return self.sls_us / self.total_us

    @property
    def fc_fraction(self):
        if self.total_us <= 0:
            return 0.0
        return self.fc_us / self.total_us

    def as_dict(self):
        return {
            "model": self.model_name,
            "batch_size": self.batch_size,
            "sls_us": self.sls_us,
            "fc_us": self.fc_us,
            "other_us": self.other_us,
            "total_us": self.total_us,
            "sls_fraction": self.sls_fraction,
            "fc_fraction": self.fc_fraction,
        }


@dataclass
class OperatorLatencyModel:
    """Estimate FC / SLS / other operator latency for one model worker.

    Attributes
    ----------
    system:
        Host system parameters.
    sls_effective_gbps:
        Memory bandwidth one model worker's SLS threads achieve (a fraction
        of the channel bandwidth shared with co-located workers).
    fc_effective_gflops:
        Effective GEMM throughput of one worker (GFLOP/s).
    fc_weight_stream_gbps:
        Bandwidth at which FC weights stream through the cache hierarchy on
        the first touch of a batch.
    other_fixed_us / other_per_sample_us:
        Fixed and per-sample cost of the remaining operators.
    """

    system: object = None
    sls_effective_gbps: float = 10.0
    fc_effective_gflops: float = 600.0
    fc_weight_stream_gbps: float = 40.0
    other_fixed_us: float = 30.0
    other_per_sample_us: float = 0.15

    def __post_init__(self):
        if self.system is None:
            self.system = SKYLAKE_SYSTEM
        for name in ("sls_effective_gbps", "fc_effective_gflops",
                     "fc_weight_stream_gbps"):
            if getattr(self, name) <= 0:
                raise ValueError("%s must be positive" % name)
        if self.other_fixed_us < 0 or self.other_per_sample_us < 0:
            raise ValueError("other-cost parameters must be non-negative")

    # ------------------------------------------------------------------ #
    def sls_time_us(self, config, batch_size, bandwidth_scale=1.0):
        """SLS execution time for one batch (microseconds)."""
        self._check(config, batch_size)
        if bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")
        bytes_gathered = batch_size * config.sls_bytes_per_sample()
        bandwidth = self.sls_effective_gbps * bandwidth_scale * 1e9
        return bytes_gathered / bandwidth * 1e6

    def fc_time_us(self, config, batch_size, efficiency_scale=1.0):
        """FC (bottom + top MLP) execution time for one batch."""
        self._check(config, batch_size)
        if efficiency_scale <= 0:
            raise ValueError("efficiency_scale must be positive")
        weight_bytes = config.fc_weight_bytes()
        stream_us = weight_bytes / (self.fc_weight_stream_gbps * 1e9) * 1e6
        flops = batch_size * config.fc_flops_per_sample()
        compute_us = flops / (self.fc_effective_gflops
                              * efficiency_scale * 1e9) * 1e6
        return stream_us + compute_us

    def other_time_us(self, config, batch_size):
        """Remaining operator time (interaction, concat, framework)."""
        self._check(config, batch_size)
        return self.other_fixed_us + self.other_per_sample_us * batch_size

    def breakdown(self, config, batch_size, sls_bandwidth_scale=1.0,
                  fc_efficiency_scale=1.0):
        """Full :class:`OperatorBreakdown` for one model and batch size."""
        self._check(config, batch_size)
        return OperatorBreakdown(
            model_name=config.name,
            batch_size=batch_size,
            sls_us=self.sls_time_us(config, batch_size, sls_bandwidth_scale),
            fc_us=self.fc_time_us(config, batch_size, fc_efficiency_scale),
            other_us=self.other_time_us(config, batch_size),
        )

    def breakdown_sweep(self, configs, batch_sizes):
        """Fig. 4-style sweep: breakdowns for each (config, batch) pair."""
        return [self.breakdown(config, batch)
                for config in configs for batch in batch_sizes]

    # ------------------------------------------------------------------ #
    def operator_roofline_inputs(self, config, batch_size):
        """FLOPs and bytes of the SLS and FC operators for roofline points.

        Returns a dictionary with per-operator ``(flops, bytes)`` tuples.
        The FC bytes are the weight bytes (activations are negligible and
        reused), matching the paper's observation that FC operational
        intensity grows with batch size while SLS intensity is flat.
        """
        self._check(config, batch_size)
        sls_flops = batch_size * config.sls_flops_per_sample()
        sls_bytes = batch_size * config.sls_bytes_per_sample()
        fc_flops = batch_size * config.fc_flops_per_sample()
        fc_bytes = config.fc_weight_bytes()
        return {
            "SLS": (sls_flops, sls_bytes),
            "FC": (fc_flops, fc_bytes),
            "model": (sls_flops + fc_flops, sls_bytes + fc_bytes),
        }

    @staticmethod
    def _check(config, batch_size):
        if not isinstance(config, ModelConfig):
            raise TypeError("config must be a ModelConfig")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
