"""Roofline model (Section II-D, Fig. 1(b) and Fig. 5).

The roofline plots attainable performance against operational intensity:
``min(peak_flops, bandwidth * intensity)``.  The paper places the SLS and FC
operators and the full RM1/RM2 models on the Skylake roofline, observes that
the models sit in the bandwidth-bound region within 35 % of the bound, and
shows that RecNMP lifts the bandwidth roof by exposing the (8x) internal
rank-level bandwidth.
"""

from dataclasses import dataclass

from repro.perf.system import SKYLAKE_SYSTEM


@dataclass
class RooflinePoint:
    """One operator/model point on the roofline."""

    name: str
    operational_intensity: float     # FLOP / byte
    performance_flops: float         # achieved FLOP/s
    batch_size: int = 0

    def __post_init__(self):
        if self.operational_intensity <= 0:
            raise ValueError("operational_intensity must be positive")
        if self.performance_flops < 0:
            raise ValueError("performance_flops must be non-negative")


class RooflineModel:
    """Attainable-performance roofline for the evaluation platform."""

    def __init__(self, system=None, bandwidth_gbps=None, peak_flops=None):
        self.system = system or SKYLAKE_SYSTEM
        self.bandwidth_gbps = bandwidth_gbps or self.system.peak_bandwidth_gbps
        self.peak_flops = peak_flops or self.system.peak_flops
        if self.bandwidth_gbps <= 0 or self.peak_flops <= 0:
            raise ValueError("bandwidth and peak_flops must be positive")

    # ------------------------------------------------------------------ #
    def attainable_flops(self, operational_intensity):
        """Roofline bound at a given operational intensity (FLOP/byte)."""
        if operational_intensity <= 0:
            raise ValueError("operational_intensity must be positive")
        memory_bound = self.bandwidth_gbps * 1e9 * operational_intensity
        return min(self.peak_flops, memory_bound)

    @property
    def ridge_point(self):
        """Operational intensity where the memory roof meets the compute roof."""
        return self.peak_flops / (self.bandwidth_gbps * 1e9)

    def is_memory_bound(self, operational_intensity):
        """True if the given intensity sits under the bandwidth roof."""
        return operational_intensity < self.ridge_point

    def efficiency(self, point):
        """Achieved fraction of the roofline bound for a measured point."""
        bound = self.attainable_flops(point.operational_intensity)
        if bound <= 0:
            return 0.0
        return point.performance_flops / bound

    # ------------------------------------------------------------------ #
    def lifted(self, bandwidth_multiplier):
        """A new roofline with the memory roof lifted by ``multiplier``.

        RecNMP exposes the aggregated internal bandwidth of all parallel
        ranks under a channel (8x for 4 DIMMs x 2 ranks), lifting the
        bandwidth-bound region of the roofline by that factor.
        """
        if bandwidth_multiplier <= 0:
            raise ValueError("bandwidth_multiplier must be positive")
        return RooflineModel(system=self.system,
                             bandwidth_gbps=self.bandwidth_gbps
                             * bandwidth_multiplier,
                             peak_flops=self.peak_flops)

    def speedup_from_lift(self, operational_intensity, bandwidth_multiplier):
        """Bound-to-bound speedup of lifting the roof at a given intensity."""
        lifted = self.lifted(bandwidth_multiplier)
        return (lifted.attainable_flops(operational_intensity)
                / self.attainable_flops(operational_intensity))

    # ------------------------------------------------------------------ #
    def curve(self, intensities):
        """Roofline curve samples: list of (intensity, attainable FLOP/s)."""
        return [(oi, self.attainable_flops(oi)) for oi in intensities]

    def operator_point(self, name, flops, bytes_moved, time_seconds,
                       batch_size=0):
        """Build a :class:`RooflinePoint` from operator characteristics."""
        if bytes_moved <= 0 or time_seconds <= 0:
            raise ValueError("bytes_moved and time_seconds must be positive")
        return RooflinePoint(
            name=name,
            operational_intensity=flops / bytes_moved,
            performance_flops=flops / time_seconds,
            batch_size=batch_size,
        )
