"""Fully-associative LRU cache simulator.

The paper uses a fully-associative configuration to verify that the falling
hit rate with larger cachelines (Fig. 7(b)) is not an artefact of conflict
misses: with full associativity the trend persists, proving embedding
lookups have little spatial locality.
"""

from collections import OrderedDict

from repro.cache.set_associative import CacheStats


class FullyAssociativeCache:
    """Fully-associative cache with true-LRU replacement."""

    def __init__(self, capacity_bytes, line_size_bytes=64):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if line_size_bytes <= 0 or line_size_bytes & (line_size_bytes - 1):
            raise ValueError("line_size_bytes must be a positive power of two")
        self.capacity_bytes = int(capacity_bytes)
        self.line_size_bytes = int(line_size_bytes)
        self.num_lines = capacity_bytes // line_size_bytes
        if self.num_lines == 0:
            raise ValueError("capacity smaller than one cacheline")
        self._lines = OrderedDict()
        self.stats = CacheStats()

    def access(self, address):
        """Simulate one access; returns True on hit, False on miss."""
        if address < 0:
            raise ValueError("address must be non-negative")
        line = address // self.line_size_bytes
        if line in self._lines:
            self._lines.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._lines) >= self.num_lines:
            self._lines.popitem(last=False)
            self.stats.evictions += 1
        self._lines[line] = None
        return False

    def access_many(self, addresses):
        """Simulate a sequence of accesses; returns the number of hits."""
        hits = 0
        for address in addresses:
            if self.access(int(address)):
                hits += 1
        return hits

    def contains(self, address):
        """True if the line holding ``address`` is resident."""
        return (address // self.line_size_bytes) in self._lines

    def reset_stats(self):
        self.stats = CacheStats()

    @property
    def hit_rate(self):
        return self.stats.hit_rate
