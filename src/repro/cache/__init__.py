"""Cache simulators.

Three caches are provided:

* :class:`SetAssociativeCache` -- the LRU, N-way set-associative model used
  for the CPU-side locality characterisation of Section II-F (Fig. 7).
* :class:`FullyAssociativeCache` -- used in the paper to isolate conflict
  misses when sweeping cacheline size.
* :class:`RankCache` -- the memory-side cache inside each rank-NMP module,
  with the LocalityBit bypass behaviour of Section III-D.
"""

from repro.cache.set_associative import SetAssociativeCache, CacheStats
from repro.cache.fully_associative import FullyAssociativeCache
from repro.cache.rank_cache import RankCache, RankCacheStats

__all__ = [
    "SetAssociativeCache",
    "FullyAssociativeCache",
    "CacheStats",
    "RankCache",
    "RankCacheStats",
]
