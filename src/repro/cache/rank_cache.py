"""RankCache: the memory-side cache inside each rank-NMP module.

Differences to a plain CPU cache (Section III-A / III-D of the paper):

* It caches whole embedding vectors keyed by their DRAM address (Daddr).
* The ``LocalityBit`` carried by each NMP instruction decides whether a
  missing vector is *allocated* in the cache or bypasses it entirely;
  low-locality lookups therefore cannot evict hot vectors.
* Embedding tables are read-only during inference, so there is no dirty
  state or write-back path.
"""

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class RankCacheStats:
    """Counters for RankCache behaviour."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    evictions: int = 0

    @property
    def accesses(self):
        """All lookups that consulted the cache (hits + allocating misses)."""
        return self.hits + self.misses

    @property
    def lookups(self):
        """All lookups including bypassed ones."""
        return self.hits + self.misses + self.bypasses

    @property
    def hit_rate(self):
        """Hit rate over all lookups (bypasses count as misses)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class RankCache:
    """LRU cache of embedding vectors with locality-hint bypass.

    Parameters
    ----------
    capacity_bytes:
        Cache capacity (the paper finds 128 KB optimal, sweeps 8 KB-1 MB).
    vector_size_bytes:
        Size of one cached embedding vector (64-256 B in production).
    access_latency_cycles:
        Lookup latency in DRAM cycles (Table I: 1 cycle).
    """

    def __init__(self, capacity_bytes=128 * 1024, vector_size_bytes=64,
                 access_latency_cycles=1):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if vector_size_bytes <= 0:
            raise ValueError("vector_size_bytes must be positive")
        if access_latency_cycles < 0:
            raise ValueError("access_latency_cycles must be non-negative")
        self.capacity_bytes = int(capacity_bytes)
        self.vector_size_bytes = int(vector_size_bytes)
        self.access_latency_cycles = int(access_latency_cycles)
        self.num_entries = max(1, capacity_bytes // vector_size_bytes)
        self._entries = OrderedDict()
        self.stats = RankCacheStats()

    # ------------------------------------------------------------------ #
    def lookup(self, dram_address, locality_hint=True):
        """Look up an embedding vector by DRAM address.

        Returns True on hit.  On a miss the vector is allocated only when
        ``locality_hint`` is set; otherwise the access bypasses the cache
        (counted separately) and DRAM must be read either way.
        """
        if dram_address < 0:
            raise ValueError("dram_address must be non-negative")
        if dram_address in self._entries:
            self._entries.move_to_end(dram_address)
            self.stats.hits += 1
            return True
        if not locality_hint:
            self.stats.bypasses += 1
            return False
        self.stats.misses += 1
        if len(self._entries) >= self.num_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[dram_address] = None
        return False

    def contains(self, dram_address):
        """True if the vector is resident (no recency update)."""
        return dram_address in self._entries

    def flush(self):
        """Drop all cached vectors (statistics retained)."""
        self._entries.clear()

    def reset_stats(self):
        self.stats = RankCacheStats()

    @property
    def occupancy(self):
        """Number of vectors currently resident."""
        return len(self._entries)

    @property
    def hit_rate(self):
        return self.stats.hit_rate
