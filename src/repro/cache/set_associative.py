"""Set-associative LRU cache simulator.

Used for the embedding-table locality study of Section II-F: the paper sweeps
cache capacity (8-64 MB, 64 B lines, 4-way, LRU) for temporal locality and
cacheline size (64-512 B at 16 MB) for spatial locality.
"""

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss counters for a cache simulation."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "accesses": self.accesses,
            "hit_rate": self.hit_rate,
        }


class SetAssociativeCache:
    """N-way set-associative cache with true-LRU replacement.

    Parameters
    ----------
    capacity_bytes:
        Total cache capacity in bytes.
    line_size_bytes:
        Cacheline size in bytes (power of two).
    associativity:
        Number of ways per set.
    """

    def __init__(self, capacity_bytes, line_size_bytes=64, associativity=4):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if line_size_bytes <= 0 or line_size_bytes & (line_size_bytes - 1):
            raise ValueError("line_size_bytes must be a positive power of two")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        num_lines = capacity_bytes // line_size_bytes
        if num_lines == 0:
            raise ValueError("capacity smaller than one cacheline")
        if num_lines % associativity:
            raise ValueError(
                "capacity (%d lines) not divisible by associativity %d"
                % (num_lines, associativity))
        self.capacity_bytes = int(capacity_bytes)
        self.line_size_bytes = int(line_size_bytes)
        self.associativity = int(associativity)
        self.num_sets = num_lines // associativity
        # Each set is an OrderedDict mapping tag -> None; the insertion order
        # encodes recency (last item = most recently used).
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    def _locate(self, address):
        line = address // self.line_size_bytes
        set_index = line % self.num_sets
        tag = line // self.num_sets
        return set_index, tag

    def access(self, address):
        """Simulate one access; returns True on hit, False on miss."""
        if address < 0:
            raise ValueError("address must be non-negative")
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.associativity:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[tag] = None
        return False

    def access_many(self, addresses):
        """Simulate a sequence of accesses; returns the number of hits."""
        hits = 0
        for address in addresses:
            if self.access(int(address)):
                hits += 1
        return hits

    def contains(self, address):
        """True if the line holding ``address`` is resident (no side effect)."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def flush(self):
        """Invalidate the whole cache, keeping statistics."""
        for cache_set in self._sets:
            cache_set.clear()

    def reset_stats(self):
        """Zero the hit/miss counters."""
        self.stats = CacheStats()

    @property
    def resident_lines(self):
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self):
        return self.stats.hit_rate
