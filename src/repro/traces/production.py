"""Synthetic equivalents of the production embedding traces T1-T8.

The paper's locality study (Fig. 7) uses eight per-table traces collected
from production traffic (Eisenman et al.).  Those traces are proprietary; we
synthesise replacements that reproduce the two properties the paper relies
on:

* **Modest temporal reuse** -- an LRU cache of 8-64 MB shared by eight
  interleaved tables (Comb-8) observes a 20-60 % hit rate, growing with
  capacity, while a random trace stays below 5 %.
* **Negligible spatial locality** -- consecutive lookups land on unrelated
  rows, so growing the cacheline size does not help (it hurts, by wasting
  capacity).

Each synthetic table trace is a hot-set/Zipf mixture whose hot-set size and
hit probability vary per table (T1 has the most reuse, T8 the least),
mirroring the spread of per-table hit rates visible in the paper's Fig. 12.
"""

import numpy as np

from repro.traces.trace import CombinedTrace, EmbeddingTrace
from repro.utils.distributions import HotSetGenerator, ZipfGenerator


class ProductionTraceGenerator:
    """Generate synthetic per-table production-like traces T1..Tn.

    Parameters
    ----------
    num_rows:
        Rows per embedding table (paper: 1M production-scale tables).
    num_tables:
        Number of distinct table traces to generate (paper: 8, T1-T8).
    seed:
        Base RNG seed; table ``k`` uses ``seed + k``.
    locality_range:
        (high, low) hot-access probability assigned to T1 .. Tn by linear
        interpolation; the defaults produce the 20-60 % Comb-8 band.
    hot_fraction_range:
        (small, large) hot-set fraction for T1 .. Tn.  The hot set of the
        most reusable table is the smallest (fits in cache easily).
    """

    def __init__(self, num_rows=1_000_000, num_tables=8, seed=0,
                 locality_range=(0.75, 0.2),
                 hot_fraction_range=(0.0005, 0.01),
                 zipf_alpha=1.05, zipf_mix=0.3):
        if num_tables <= 0:
            raise ValueError("num_tables must be positive")
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        self.num_rows = int(num_rows)
        self.num_tables = int(num_tables)
        self.seed = seed
        self.locality_range = locality_range
        self.hot_fraction_range = hot_fraction_range
        self.zipf_alpha = float(zipf_alpha)
        self.zipf_mix = float(zipf_mix)

    # ------------------------------------------------------------------ #
    def table_parameters(self, table_index):
        """Hot-set parameters for table ``table_index`` (0-based)."""
        if not 0 <= table_index < self.num_tables:
            raise IndexError("table_index out of range")
        if self.num_tables == 1:
            fraction = 0.0
        else:
            fraction = table_index / (self.num_tables - 1)
        hot_probability = (self.locality_range[0]
                           + fraction * (self.locality_range[1]
                                         - self.locality_range[0]))
        hot_fraction = (self.hot_fraction_range[0]
                        + fraction * (self.hot_fraction_range[1]
                                      - self.hot_fraction_range[0]))
        return {"hot_probability": hot_probability,
                "hot_fraction": hot_fraction}

    def generate_table_trace(self, table_index, num_lookups):
        """Generate the synthetic trace for one table (``T{k+1}``)."""
        params = self.table_parameters(table_index)
        seed = None if self.seed is None else self.seed + table_index
        hot_generator = HotSetGenerator(
            self.num_rows,
            hot_fraction=params["hot_fraction"],
            hot_probability=params["hot_probability"],
            seed=seed,
        )
        # The Zipf component spans the whole table: its warm middle ranks
        # give the capacity-dependent reuse of Fig. 7(a) (hit rate grows as
        # the cache approaches the table footprint), while the hot-set
        # component provides the short-range reuse the RankCache exploits.
        zipf_generator = ZipfGenerator(
            self.num_rows, alpha=self.zipf_alpha, seed=seed)
        rng = np.random.default_rng(seed)
        hot_indices = hot_generator.sample(num_lookups)
        zipf_indices = zipf_generator.sample(num_lookups)
        use_zipf = rng.random(num_lookups) < self.zipf_mix
        indices = np.where(use_zipf, zipf_indices, hot_indices)
        return EmbeddingTrace(
            table_id=table_index,
            indices=indices.astype(np.int64),
            num_rows=self.num_rows,
            name="T%d" % (table_index + 1),
            metadata={"kind": "production-synthetic", **params},
        )

    def generate_all(self, num_lookups_per_table):
        """Generate traces for all tables; returns a list of traces."""
        return [self.generate_table_trace(i, num_lookups_per_table)
                for i in range(self.num_tables)]


def make_production_table_traces(num_lookups_per_table=20_000,
                                 num_rows=1_000_000, num_tables=8, seed=0):
    """Convenience wrapper returning the T1-T8 synthetic traces."""
    generator = ProductionTraceGenerator(num_rows=num_rows,
                                         num_tables=num_tables, seed=seed)
    return generator.generate_all(num_lookups_per_table)


def make_combined_trace(table_traces, multiplier=1, block_size=1):
    """Build a Comb-N interleaving from per-table traces.

    ``multiplier`` replicates the table set, matching the paper's Comb-16 /
    Comb-32 / Comb-64 methodology (the 8 production traces multiplied 2x,
    4x and 8x on the same machine).  Replicated tables are re-identified so
    they behave as distinct tables with the same statistics.
    """
    if multiplier <= 0:
        raise ValueError("multiplier must be positive")
    traces = []
    next_table_id = 0
    for copy in range(multiplier):
        for trace in table_traces:
            if copy == 0:
                replica = trace
                replica = EmbeddingTrace(table_id=next_table_id,
                                         indices=trace.indices,
                                         num_rows=trace.num_rows,
                                         name=trace.name,
                                         metadata=dict(trace.metadata))
            else:
                # Shift the index space of the replica so it does not share
                # rows (separate physical table with identical statistics).
                shifted = (trace.indices + copy * 977) % trace.num_rows
                replica = EmbeddingTrace(table_id=next_table_id,
                                         indices=shifted,
                                         num_rows=trace.num_rows,
                                         name="%s-copy%d" % (trace.name, copy),
                                         metadata=dict(trace.metadata))
            traces.append(replica)
            next_table_id += 1
    return CombinedTrace(traces, block_size=block_size)
