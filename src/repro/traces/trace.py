"""Trace containers: per-table lookup streams and their combination.

An :class:`EmbeddingTrace` is the sequence of row indices looked up in one
embedding table.  A :class:`CombinedTrace` interleaves several per-table
traces the way a co-located production host sees them (Comb-8 / Comb-16 /
Comb-32 / Comb-64 in the paper's Fig. 7 and Fig. 12).
"""

import json
from dataclasses import dataclass, field

import numpy as np


@dataclass
class EmbeddingTrace:
    """Lookup trace for one embedding table.

    Attributes
    ----------
    table_id:
        Identifier of the table.
    indices:
        The sequence of row indices accessed, in program order.
    num_rows:
        Number of rows in the table the indices refer to.
    name:
        Human-readable trace name (e.g. ``"T3"``).
    """

    table_id: int
    indices: np.ndarray
    num_rows: int
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indices.ndim != 1:
            raise ValueError("indices must be a 1-D sequence")
        if self.num_rows <= 0:
            raise ValueError("num_rows must be positive")
        if self.indices.size and (self.indices.min() < 0
                                  or self.indices.max() >= self.num_rows):
            raise ValueError("trace contains out-of-range indices")

    def __len__(self):
        return int(self.indices.shape[0])

    # ------------------------------------------------------------------ #
    def unique_fraction(self):
        """Fraction of accesses that touch a distinct row (1.0 = no reuse)."""
        if not len(self):
            return 0.0
        return np.unique(self.indices).size / self.indices.size

    def reuse_histogram(self, max_count=16):
        """Histogram of per-row access counts, clipped at ``max_count``."""
        if not len(self):
            return np.zeros(max_count + 1, dtype=np.int64)
        counts = np.bincount(
            np.unique(self.indices, return_counts=True)[1].clip(max=max_count))
        histogram = np.zeros(max_count + 1, dtype=np.int64)
        histogram[:counts.size] = counts
        return histogram

    def slice(self, start, stop):
        """Return a sub-trace covering accesses ``[start, stop)``."""
        return EmbeddingTrace(table_id=self.table_id,
                              indices=self.indices[start:stop],
                              num_rows=self.num_rows,
                              name=self.name,
                              metadata=dict(self.metadata))

    # ------------------------------------------------------------------ #
    def to_dict(self):
        """JSON-serialisable representation."""
        return {
            "table_id": self.table_id,
            "indices": self.indices.tolist(),
            "num_rows": self.num_rows,
            "name": self.name,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(table_id=payload["table_id"],
                   indices=np.asarray(payload["indices"], dtype=np.int64),
                   num_rows=payload["num_rows"],
                   name=payload.get("name", ""),
                   metadata=payload.get("metadata", {}))

    def save(self, path):
        """Write the trace as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path):
        """Load a trace previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


class CombinedTrace:
    """Interleaving of several per-table traces on one machine.

    The interleaving is round-robin in blocks of ``block_size`` lookups,
    approximating concurrent SLS threads of co-located models taking turns
    on the memory system (the paper's Comb-N methodology: N tables share the
    machine and their accesses interleave).
    """

    def __init__(self, traces, block_size=1):
        if not traces:
            raise ValueError("need at least one trace to combine")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.traces = list(traces)
        self.block_size = int(block_size)

    def __len__(self):
        return sum(len(trace) for trace in self.traces)

    @property
    def num_tables(self):
        return len(self.traces)

    def interleaved(self):
        """Yield ``(table_id, row_index)`` pairs in interleaved order."""
        positions = [0] * len(self.traces)
        remaining = len(self)
        while remaining:
            progressed = False
            for slot, trace in enumerate(self.traces):
                start = positions[slot]
                if start >= len(trace):
                    continue
                stop = min(start + self.block_size, len(trace))
                for index in trace.indices[start:stop]:
                    yield slot, int(index)
                consumed = stop - start
                positions[slot] = stop
                remaining -= consumed
                progressed = True
            if not progressed:
                break

    def interleaved_array(self):
        """Return the interleaving as an (N, 2) array of (slot, row)."""
        pairs = list(self.interleaved())
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(pairs, dtype=np.int64)
