"""Synthetic trace generators: random, Zipfian and hot-set traces."""

import numpy as np

from repro.dlrm.operators import SLSRequest
from repro.traces.trace import EmbeddingTrace
from repro.utils.distributions import (
    HotSetGenerator,
    UniformGenerator,
    ZipfGenerator,
)


def random_trace(num_rows, num_lookups, table_id=0, seed=None, name="random"):
    """Fully random (worst-case locality) lookup trace."""
    generator = UniformGenerator(num_rows, seed=seed)
    indices = generator.sample(num_lookups)
    return EmbeddingTrace(table_id=table_id, indices=indices,
                          num_rows=num_rows, name=name,
                          metadata={"kind": "random"})


def zipf_trace(num_rows, num_lookups, alpha=1.05, table_id=0, seed=None,
               name="zipf"):
    """Zipf-distributed lookup trace (power-law item popularity)."""
    generator = ZipfGenerator(num_rows, alpha=alpha, seed=seed)
    indices = generator.sample(num_lookups)
    return EmbeddingTrace(table_id=table_id, indices=indices,
                          num_rows=num_rows, name=name,
                          metadata={"kind": "zipf", "alpha": alpha})


def hotset_trace(num_rows, num_lookups, hot_fraction=0.001,
                 hot_probability=0.5, table_id=0, seed=None, name="hotset"):
    """Hot-set mixture trace with controllable temporal locality."""
    generator = HotSetGenerator(num_rows, hot_fraction=hot_fraction,
                                hot_probability=hot_probability, seed=seed)
    indices = generator.sample(num_lookups)
    return EmbeddingTrace(table_id=table_id, indices=indices,
                          num_rows=num_rows, name=name,
                          metadata={"kind": "hotset",
                                    "hot_fraction": hot_fraction,
                                    "hot_probability": hot_probability})


def batched_requests_from_trace(trace, batch_size, pooling_factor):
    """Slice a trace into :class:`SLSRequest` batches.

    Each request consumes ``batch_size * pooling_factor`` consecutive lookups
    from the trace; trailing lookups that do not fill a request are dropped.
    """
    if batch_size <= 0 or pooling_factor <= 0:
        raise ValueError("batch_size and pooling_factor must be positive")
    per_request = batch_size * pooling_factor
    num_requests = len(trace) // per_request
    requests = []
    for i in range(num_requests):
        start = i * per_request
        indices = trace.indices[start:start + per_request]
        lengths = np.full(batch_size, pooling_factor, dtype=np.int64)
        requests.append(SLSRequest(table_id=trace.table_id, indices=indices,
                                   lengths=lengths,
                                   metadata={"trace": trace.name,
                                             "request_index": i}))
    return requests
