"""Embedding-lookup trace generation and handling.

The paper's locality study and RecNMP evaluation are driven by per-table
embedding lookup traces (T1-T8 from production plus fully random traces).
The production traces are proprietary; :mod:`repro.traces.production`
synthesises statistically equivalent ones (documented in DESIGN.md).
"""

from repro.traces.trace import EmbeddingTrace, CombinedTrace
from repro.traces.synthetic import (
    random_trace,
    zipf_trace,
    hotset_trace,
    batched_requests_from_trace,
)
from repro.traces.production import (
    ProductionTraceGenerator,
    make_production_table_traces,
    make_combined_trace,
)

__all__ = [
    "EmbeddingTrace",
    "CombinedTrace",
    "random_trace",
    "zipf_trace",
    "hotset_trace",
    "batched_requests_from_trace",
    "ProductionTraceGenerator",
    "make_production_table_traces",
    "make_combined_trace",
]
