"""Embedding-trace locality analysis (the Section II-F characterisation).

Generates the synthetic production table traces (T1-T8), combines them the
way co-located models interleave on one host (Comb-8 / Comb-16 / Comb-32),
and measures:

* temporal locality -- LRU hit rate sweeping cache capacity 8-64 MB,
* spatial locality  -- hit rate sweeping the cacheline size 64-512 B,
* the effect of the RecNMP co-optimisations (table-aware scheduling and
  hot-entry profiling) on a 1 MB RankCache.

Run with:  python examples/locality_analysis.py
"""

from repro.cache import RankCache, SetAssociativeCache
from repro.core import HotEntryProfiler
from repro.traces import (
    make_combined_trace,
    make_production_table_traces,
    random_trace,
)

NUM_ROWS = 1_000_000
LOOKUPS_PER_TABLE = 5_000
VECTOR_BYTES = 64


def address_of(table_id, row):
    return table_id * NUM_ROWS * VECTOR_BYTES + row * VECTOR_BYTES


def temporal_locality(workloads):
    print("Temporal locality: LRU hit rate vs cache capacity (64 B lines)")
    print("%-10s" % "trace", end="")
    capacities = (8, 16, 32, 64)
    for capacity in capacities:
        print("%10s" % ("%d MB" % capacity), end="")
    print()
    for name, accesses in workloads.items():
        print("%-10s" % name, end="")
        for capacity in capacities:
            cache = SetAssociativeCache(capacity * 1024 * 1024,
                                        associativity=4)
            cache.access_many(accesses)
            print("%10.1f%%" % (100 * cache.hit_rate), end="")
        print()
    print()


def spatial_locality(accesses):
    print("Spatial locality: hit rate vs cacheline size (16 MB, Comb-8)")
    for line_size in (64, 128, 256, 512):
        cache = SetAssociativeCache(16 * 1024 * 1024,
                                    line_size_bytes=line_size,
                                    associativity=4)
        cache.access_many(accesses)
        print("  %4d B lines: %5.1f%%" % (line_size, 100 * cache.hit_rate))
    print()


def rankcache_optimizations(traces):
    print("1 MB RankCache hit rate with the RecNMP co-optimisations")
    # Baseline: tables interleaved, everything allocated in the cache.
    interleaved = [(trace.table_id, int(row))
                   for position in range(LOOKUPS_PER_TABLE)
                   for trace in traces
                   for row in [trace.indices[position]]]
    table_aware = [(trace.table_id, int(row))
                   for trace in traces for row in trace.indices]
    profiler = HotEntryProfiler(threshold=2)
    profiles = {trace.table_id: profiler.profile(trace.indices,
                                                 trace.table_id)
                for trace in traces}
    scenarios = {
        "interleaved": (interleaved, None),
        "table-aware schedule": (table_aware, None),
        "schedule + hot-entry profile": (table_aware, profiles),
    }
    for name, (order, hints) in scenarios.items():
        cache = RankCache(capacity_bytes=1024 * 1024,
                          vector_size_bytes=VECTOR_BYTES)
        for table_id, row in order:
            hint = True if hints is None else hints[table_id].is_hot(row)
            cache.lookup(address_of(table_id, row), locality_hint=hint)
        print("  %-30s %5.1f%%" % (name, 100 * cache.hit_rate))
    print()


def main():
    traces = make_production_table_traces(
        num_lookups_per_table=LOOKUPS_PER_TABLE, num_rows=NUM_ROWS, seed=0)
    workloads = {"random": (random_trace(NUM_ROWS, 8 * LOOKUPS_PER_TABLE,
                                         seed=1).indices
                            * VECTOR_BYTES).tolist()}
    for name, multiplier in (("Comb-8", 1), ("Comb-16", 2), ("Comb-32", 4)):
        combined = make_combined_trace(traces, multiplier=multiplier)
        workloads[name] = [address_of(table, row)
                           for table, row in combined.interleaved()]
    temporal_locality(workloads)
    spatial_locality(workloads["Comb-8"])
    rankcache_optimizations(traces)


if __name__ == "__main__":
    main()
