"""RecNMP design-space exploration.

Sweeps the main hardware and software knobs of the RecNMP design on a
production-like SLS workload and prints the resulting memory-latency
speedups, RankCache hit rates and the area/power cost of each hardware
point -- the kind of study an architect would run before committing to a
configuration:

* memory channel population (DIMMs x ranks),
* RankCache capacity (including no cache at all),
* packet size (poolings per NMP packet),
* scheduling policy and hot-entry profiling,
* data layout (page colouring vs address hashing).

Run with:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.core import AreaPowerModel
from repro.dlrm.operators import SLSRequest
from repro.systems import build_system
from repro.traces import make_production_table_traces

NUM_ROWS = 20_000
VECTOR_BYTES = 128
NUM_TABLES = 8
BATCH, POOLING = 8, 40


def address_of(table_id, row):
    return table_id * NUM_ROWS * VECTOR_BYTES + row * VECTOR_BYTES


def build_requests(seed=0):
    traces = make_production_table_traces(
        num_lookups_per_table=BATCH * POOLING, num_rows=NUM_ROWS,
        num_tables=NUM_TABLES, seed=seed)
    requests = []
    for trace in traces:
        requests.append(SLSRequest(
            table_id=trace.table_id,
            indices=trace.indices[:BATCH * POOLING],
            lengths=np.full(BATCH, POOLING)))
    return requests


def run(requests, **overrides):
    defaults = dict(num_dimms=4, ranks_per_dimm=2,
                    vector_size_bytes=VECTOR_BYTES, address_of=address_of)
    defaults.update(overrides)
    system = build_system("recnmp-opt", **defaults)
    return system, system.run(requests)


def sweep_channel_population(requests):
    print("Channel population (RecNMP-opt, 128 KB RankCache)")
    print("  %-8s %-10s %-10s %-12s %-12s" %
          ("config", "speedup", "hit rate", "area (mm2)", "power (mW)"))
    for num_dimms, ranks_per_dimm in ((1, 1), (1, 2), (2, 2), (1, 4), (4, 2)):
        config, result = run(requests, num_dimms=num_dimms,
                             ranks_per_dimm=ranks_per_dimm)
        overhead = AreaPowerModel.recnmp_opt(
            num_ranks=ranks_per_dimm).estimate()
        print("  %-8s %-10.2f %-10.2f %-12.2f %-12.1f"
              % ("%dx%d" % (num_dimms, ranks_per_dimm),
                 result.speedup_vs_baseline, result.cache_hit_rate,
                 overhead.area_mm2 * num_dimms,
                 overhead.power_mw * num_dimms))
    print()


def sweep_rankcache(requests):
    print("RankCache capacity (8-rank channel)")
    no_cache_config, no_cache = run(requests, use_rank_cache=False)
    print("  %-10s speedup %.2f" % ("no cache", no_cache.speedup_vs_baseline))
    for cache_kb in (8, 32, 128, 512, 1024):
        _, result = run(requests, rank_cache_kb=cache_kb)
        print("  %-10s speedup %.2f   hit rate %.2f"
              % ("%d KB" % cache_kb, result.speedup_vs_baseline,
                 result.cache_hit_rate))
    print()


def sweep_software_knobs(requests):
    print("Software co-optimisations (8-rank, 128 KB RankCache)")
    variants = (
        ("fcfs, no profiling", dict(scheduling_policy="fcfs",
                                    enable_hot_entry_profiling=False)),
        ("table-aware, no profiling", dict(scheduling_policy="table-aware",
                                           enable_hot_entry_profiling=False)),
        ("table-aware + profiling", dict(scheduling_policy="table-aware",
                                         enable_hot_entry_profiling=True)),
        ("page colouring layout", dict(rank_assignment="page-coloring")),
        ("small packets (2 poolings)", dict(poolings_per_packet=2)),
    )
    for name, overrides in variants:
        _, result = run(requests, **overrides)
        print("  %-28s speedup %.2f   hit rate %.2f   slowest-rank share %.2f"
              % (name, result.speedup_vs_baseline, result.cache_hit_rate,
                 result.load_imbalance))
    print()


def main():
    requests = build_requests()
    sweep_channel_population(requests)
    sweep_rankcache(requests)
    sweep_software_knobs(requests)


if __name__ == "__main__":
    main()
