"""Quickstart: run a DLRM inference and offload its SLS operators to RecNMP.

This example walks through the core workflow of the library:

1. build a (scaled-down) DLRM model and run a functional inference batch,
2. turn its embedding lookups into SLS requests,
3. simulate the lookups on the baseline DDR4 system and on an 8-rank
   RecNMP-opt channel,
4. report the memory-latency speedup, RankCache hit rate, energy savings and
   the resulting end-to-end model speedup.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.dlrm import DLRMModel, RM1_SMALL
from repro.dlrm.config import scaled_config
from repro.perf import EndToEndModel
from repro.systems import build_system


def main():
    # ----------------------------------------------------------------- #
    # 1. A runnable DLRM instance (tables shrunk to 4096 rows so the      #
    #    functional model fits in memory; the architecture is RM1-small). #
    # ----------------------------------------------------------------- #
    config = scaled_config(RM1_SMALL, num_embedding_tables=4)
    model = DLRMModel(config, rows_override=4096, seed=0)
    batch_size, pooling = 8, 40
    dense, sls_requests = model.random_inputs(batch_size,
                                              pooling_factor=pooling)
    output = model.forward(dense, sls_requests)
    print("DLRM forward pass: batch of %d, mean CTR prediction %.3f"
          % (batch_size, float(np.mean(output.predictions))))

    # ----------------------------------------------------------------- #
    # 2-3. Offload the same SLS requests to RecNMP and compare with the   #
    #      DDR4 baseline (both cycle-level simulations).                  #
    # ----------------------------------------------------------------- #
    vector_bytes = config.embedding_vector_bytes

    def address_of(table_id, row):
        return model.embeddings[table_id].row_address(row)

    # Systems are built by name through the unified registry; every knob of
    # the underlying RecNMPConfig is an override.
    system = build_system(
        "recnmp-opt",
        num_dimms=4, ranks_per_dimm=2,          # 8 concurrently active ranks
        vector_size_bytes=vector_bytes,
        address_of=address_of,
    )
    result = system.run(sls_requests)

    print()
    print("RecNMP configuration: %s" % system.describe())
    print("  embedding lookups simulated : %d" % result.num_lookups)
    print("  DDR4 baseline               : %d cycles" % result.baseline_cycles)
    print("  RecNMP                      : %d cycles" % result.total_cycles)
    print("  SLS memory-latency speedup  : %.2fx" % result.speedup_vs_baseline)
    print("  RankCache hit rate          : %.1f%%"
          % (100 * result.cache_hit_rate))
    print("  memory energy savings       : %.1f%%"
          % (100 * result.energy_savings_fraction))

    # ----------------------------------------------------------------- #
    # 4. Compose the SLS speedup into an end-to-end model speedup.        #
    # ----------------------------------------------------------------- #
    end_to_end = EndToEndModel().speedup(RM1_SMALL, 256,
                                         result.speedup_vs_baseline)
    print()
    print("End-to-end RM1-small speedup at batch 256: %.2fx "
          "(SLS share of baseline time: %.0f%%)"
          % (end_to_end.end_to_end_speedup, 100 * end_to_end.sls_fraction))


if __name__ == "__main__":
    main()
