"""Serving study: production traffic on a sharded RecNMP cluster.

Builds a two-node serving cluster for each registry system, offers the same
Poisson query stream (production-locality traces, batched by a size- and
deadline-triggered frontend, tables sharded round-robin), and reports the
latency percentiles and sustainable throughput of each -- then sweeps the
offered load on the RecNMP cluster to show the latency/QPS trade-off,
contrasts sharding policies (round-robin vs load-aware placement with
hot-table replication) on a skewed stream, drives the cluster into
overload under bursty MMPP traffic to contrast the admission controllers
on goodput, and compares the closed-form queue model against the
event-driven engine on a long interpolated run.

Run with:  python examples/serving_demo.py
"""

from repro.perf.service_model import InterpolatingServiceModel
from repro.serving import (
    BatchingFrontend,
    MMPPArrivalProcess,
    PoissonArrivalProcess,
    ReplicatedTableSharder,
    ShardedServingCluster,
    TableSharder,
    calibrate_request_overhead_from_queries,
    load_imbalance,
    qps_sweep,
    queries_from_traces,
)
from repro.systems import build_system
from repro.traces import make_production_table_traces

NUM_ROWS = 20_000
VECTOR_BYTES = 128
NUM_TABLES = 8
NUM_QUERIES = 64
NUM_NODES = 2


def address_of(table_id, row):
    return (table_id * NUM_ROWS + row) * VECTOR_BYTES


def build_traces():
    return make_production_table_traces(
        num_lookups_per_table=2_000, num_rows=NUM_ROWS,
        num_tables=NUM_TABLES, seed=0)


def build_queries(qps, seed=1, num_queries=NUM_QUERIES):
    return queries_from_traces(
        build_traces(), num_queries,
        PoissonArrivalProcess(rate_qps=qps, seed=seed),
        batch_size=4, pooling_factor=20)


def compare_systems():
    print("Tail latency by system (%d nodes, 120k QPS offered)" % NUM_NODES)
    print("  %-16s %-6s %-10s %-10s %-10s %-14s"
          % ("system", "rho", "p50 (us)", "p95 (us)", "p99 (us)",
             "sustainable"))
    queries = build_queries(120_000.0)
    frontend = BatchingFrontend(max_queries=8, max_delay_us=100.0)
    for name in ("host", "tensordimm", "recnmp-opt", "recnmp-opt-4ch"):
        cluster = ShardedServingCluster(
            num_nodes=NUM_NODES, node_system=name, address_of=address_of,
            vector_size_bytes=VECTOR_BYTES)
        report = cluster.simulate(queries, frontend=frontend)
        print("  %-16s %-6.2f %-10.1f %-10.1f %-10.1f %-14.0f"
              % (name, report.utilization, report.p50_us, report.p95_us,
                 report.p99_us, report.sustainable_qps))
    print()


def load_sweep():
    print("Offered-load sweep (recnmp-opt-4ch, %d nodes)" % NUM_NODES)
    cluster = ShardedServingCluster(
        num_nodes=NUM_NODES, node_system="recnmp-opt-4ch",
        address_of=address_of, vector_size_bytes=VECTOR_BYTES)
    frontend = BatchingFrontend(max_queries=8, max_delay_us=100.0)
    points = (50_000.0, 150_000.0, 400_000.0, 1_000_000.0)
    reports = qps_sweep(cluster, build_queries, points, frontend=frontend)
    for qps, report in zip(points, reports):
        print("  %8.0f QPS offered: rho %.3f, p50 %7.1f us, p99 %7.1f us"
              % (qps, report.utilization, report.p50_us, report.p99_us))
    print()


def engine_comparison():
    """Analytic vs event-driven tails on a long interpolated run."""
    print("Engine comparison (recnmp-opt-4ch, %d nodes, 2 frontends, "
          "5k queries, interpolated service times)" % NUM_NODES)
    cluster = ShardedServingCluster(
        num_nodes=NUM_NODES, node_system="recnmp-opt-4ch",
        num_frontends=2, address_of=address_of,
        vector_size_bytes=VECTOR_BYTES)
    frontend = BatchingFrontend(max_queries=8, max_delay_us=100.0)
    model = InterpolatingServiceModel(build_traces())
    queries = build_queries(600_000.0, num_queries=5_000)
    for engine in ("analytic", "event"):
        report = cluster.simulate(queries, frontend=frontend,
                                  engine=engine, service_model=model)
        print("  %-9s rho %.3f, mean %7.1f us, p95 %7.1f us, "
              "p99 %7.1f us"
              % (engine, report.utilization, report.mean_latency_us,
                 report.p95_us, report.p99_us))
    print()


def sharding_policies():
    """Replication-aware sharding on a skewed query stream.

    One hot table dominates the lookup volume; single-placement sharding
    pins it to one node, so that shard sets every batch's service time.
    Load-aware placement plus hot-table replication spreads it out.
    """
    print("Sharding policies (recnmp-opt, 4 nodes, skewed table loads)")
    num_nodes = 4
    poolings = [120, 40, 24, 16, 12, 8, 4, 4]   # table 0 is hot
    queries = queries_from_traces(
        build_traces(), 32,
        PoissonArrivalProcess(rate_qps=100_000.0, seed=2),
        batch_size=8, pooling_factor=poolings)
    requests = [r for query in queries for r in query.requests]
    frontend = BatchingFrontend(max_queries=4, max_delay_us=100.0)
    # Price the per-request dispatch cost from the node's own measured
    # service times rather than a hand-set constant (pass
    # request_overhead_lookups= explicitly to override).
    probe = build_system("recnmp-opt", address_of=address_of,
                         vector_size_bytes=VECTOR_BYTES,
                         compare_baseline=False)
    overhead = calibrate_request_overhead_from_queries(probe, queries)
    print("  (calibrated request overhead: %.1f lookup-equivalents)"
          % overhead)
    sharders = (
        ("round-robin", TableSharder(num_nodes)),
        ("load-aware + replicas",
         ReplicatedTableSharder.from_queries(
             num_nodes, queries, request_overhead_lookups=overhead,
             policy="load-aware", max_replicas=3, hot_fraction=0.15)),
    )
    for name, sharder in sharders:
        imbalance = load_imbalance(sharder.shard_load(requests))
        cluster = ShardedServingCluster(
            num_nodes=num_nodes, node_system="recnmp-opt",
            sharder=sharder, address_of=address_of,
            vector_size_bytes=VECTOR_BYTES)
        report = cluster.simulate(queries, frontend=frontend,
                                  engine="event")
        print("  %-22s imbalance %.2f, E[S] %6.2f us, p99 %7.1f us, "
              "sustainable %.0f QPS"
              % (name, imbalance, report.mean_service_us, report.p99_us,
                 report.sustainable_qps))
    print()


def slo_admission_overload():
    """Admission controllers under bursty overload.

    Every query carries a fixed SLO; a bursty MMPP stream offers ~1.5x
    the cluster's sustainable rate.  Open-loop FIFO lets the backlog
    grow until every late query misses its deadline; the admission
    controllers shed at arrival and keep goodput near capacity --
    deadline-aware shedding drops exactly the queries that could not
    have met their SLO anyway.
    """
    print("SLOs and admission control (recnmp-opt-4ch, %d nodes, "
          "MMPP overload)" % NUM_NODES)
    cluster = ShardedServingCluster(
        num_nodes=NUM_NODES, node_system="recnmp-opt-4ch",
        num_frontends=2, address_of=address_of,
        vector_size_bytes=VECTOR_BYTES)
    frontend = BatchingFrontend(max_queries=8, max_delay_us=100.0)
    model = InterpolatingServiceModel(build_traces())
    # Calibrate capacity and an achievable SLO at low load.
    probe = cluster.simulate(build_queries(100_000.0, num_queries=2_000),
                             frontend=frontend, engine="event",
                             service_model=model)
    slo_us = 1.5 * probe.p99_us
    offered = 1.5 * probe.sustainable_qps
    queries = queries_from_traces(
        build_traces(), 4_000,
        MMPPArrivalProcess.from_mean(offered, seed=3),
        batch_size=4, pooling_factor=20)
    print("  SLO %.0f us, offered %.0f QPS (~1.5x sustainable)"
          % (slo_us, offered))
    for admission in ("none", "token-bucket", "queue-depth", "deadline"):
        report = cluster.simulate(queries, frontend=frontend,
                                  engine="event", service_model=model,
                                  slo_policy=slo_us, admission=admission)
        slo = report.extras["slo"]
        print("  %-13s shed %5.1f%%, attainment %5.1f%%, goodput "
              "%8.0f QPS, p99 %7.1f us"
              % (admission, 100 * slo["shed_rate"],
                 100 * slo["attainment"], slo["goodput_qps"],
                 report.p99_us))
    print()


def main():
    compare_systems()
    load_sweep()
    sharding_policies()
    slo_admission_overload()
    engine_comparison()


if __name__ == "__main__":
    main()
