"""Model co-location study (the production-environment analysis).

Recommendation inference servers co-locate several models to raise
throughput.  This example uses the analytical performance models to study
what that does to a single server:

* how the operator mix shifts with batch size (the Fig. 4 breakdown),
* how memory bandwidth saturates as SLS threads accumulate (Fig. 6),
* how co-location degrades the co-located TopFC operators through cache
  contention and how much of that RecNMP recovers (Fig. 17),
* the latency-throughput trade-off with and without RecNMP (Fig. 18(c)).

Run with:  python examples/colocation_study.py
"""

from repro.dlrm import MODEL_CONFIGS, RM2_LARGE, RM2_SMALL
from repro.perf import (
    BandwidthSaturationModel,
    ColocationModel,
    EndToEndModel,
    OperatorLatencyModel,
    latency_throughput_curve,
)


def operator_mix():
    print("Operator mix per model (share of execution time in SLS)")
    latency = OperatorLatencyModel()
    print("  %-10s" % "model", end="")
    for batch in (8, 64, 256):
        print("%12s" % ("batch %d" % batch), end="")
    print()
    for name, config in MODEL_CONFIGS.items():
        print("  %-10s" % name, end="")
        for batch in (8, 64, 256):
            breakdown = latency.breakdown(config, batch)
            print("%11.0f%%" % (100 * breakdown.sls_fraction), end="")
        print()
    print()


def bandwidth_saturation():
    print("Memory bandwidth saturation (batch 256)")
    model = BandwidthSaturationModel()
    for threads in (1, 4, 8, 16, 30, 40):
        print("  %2d SLS threads: %5.1f GB/s (%4.1f%% of peak), "
              "latency %5.0f ns"
              % (threads, model.achieved_bandwidth_gbps(threads, 256),
                 100 * model.utilization(threads, 256),
                 model.access_latency_ns(threads, 256)))
    saturation = model.saturation_point(256)
    print("  67.4%%-of-peak saturation point: %s threads" % saturation)
    print()


def fc_contention():
    print("Co-located TopFC degradation and RecNMP relief")
    colocation = ColocationModel()
    for config in (RM2_SMALL, RM2_LARGE):
        fc_bytes = config.fc_weight_bytes()
        print("  %s (FC weights %.1f MB)" % (config.name, fc_bytes / 1e6))
        for degree in (2, 4, 8):
            baseline = colocation.baseline_slowdown(fc_bytes, degree)
            recnmp = colocation.recnmp_slowdown(fc_bytes, degree)
            print("    %d co-located models: baseline %.2fx slower, "
                  "with RecNMP %.2fx (%.0f%% recovered)"
                  % (degree, baseline, recnmp,
                     100 * (1 - (recnmp - 1) / max(baseline - 1, 1e-9))))
    print()


def latency_throughput():
    print("Latency-throughput trade-off for RM2-small (batch 64)")
    latency = OperatorLatencyModel()
    for label, use_recnmp, sls_speedup in (("host", False, 1.0),
                                           ("RecNMP-opt", True, 8.0)):
        points = latency_throughput_curve(latency, RM2_SMALL, 64,
                                          [1, 2, 4, 8],
                                          sls_speedup=sls_speedup,
                                          locality_bonus=1.15,
                                          use_recnmp=use_recnmp)
        print("  %s" % label)
        for point in points:
            print("    %d model(s): latency %6.2f ms, %8.0f inferences/s"
                  % (point["colocation"], point["latency_us"] / 1e3,
                     point["throughput_inferences_per_s"]))
    print()


def end_to_end_summary():
    print("End-to-end speedup with an 8-rank RecNMP (9.8x SLS speedup)")
    model = EndToEndModel()
    for name, config in MODEL_CONFIGS.items():
        result = model.speedup(config, 256, sls_speedup=9.8,
                               colocation_degree=4)
        print("  %-10s %.2fx (SLS share %.0f%%, co-located FC relief %.2fx)"
              % (name, result.end_to_end_speedup, 100 * result.sls_fraction,
                 result.non_sls_speedup))


def main():
    operator_mix()
    bandwidth_saturation()
    fc_contention()
    latency_throughput()
    end_to_end_summary()


if __name__ == "__main__":
    main()
