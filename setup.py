"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that fully offline environments (no ``wheel`` package available) can still
perform a legacy editable install with
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
